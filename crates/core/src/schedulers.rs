//! Resource allocators: Proteus and the §6.1.1 baselines.
//!
//! | Allocator | Model placement | Model selection | Accuracy scaling |
//! |---|---|---|---|
//! | [`ClipperAllocator`] (HT/HA) | static | static | no |
//! | [`SommelierAllocator`] | static | heuristic | limited |
//! | [`InfaasAccuracyAllocator`] | heuristic | heuristic | yes (greedy) |
//! | [`ProteusAllocator`] | MILP | MILP | yes (optimal) |
//!
//! (Table 2 of the paper.) The §6.5 ablations are configurations of
//! [`ProteusAllocator`]: restricting variants to each family's most accurate
//! one gives *w/o model selection*; uniform routing gives *w/o query
//! assignment*; Sommelier doubles as *w/o model placement*; *w/o adaptive
//! batching* is a batching-policy choice, not an allocator.

use proteus_profiler::{DeviceId, ModelFamily, VariantId};
use proteus_sim::SimTime;
use proteus_solver::SolveStats;

use crate::allocation::milp::{solve_allocation, MilpConfig, VariantRestriction};
pub use crate::allocation::AllocContext;
use crate::allocation::AllocationPlan;
use crate::FamilyMap;

/// A resource-allocation strategy: given target per-family demand, produce
/// a new [`AllocationPlan`].
pub trait Allocator: std::fmt::Debug + Send {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Computes a plan for `demand` (QPS per family). `current` is the plan
    /// in force, letting incremental heuristics avoid churn.
    fn allocate(
        &mut self,
        ctx: &AllocContext<'_>,
        demand: &FamilyMap<f64>,
        current: Option<&AllocationPlan>,
        now: SimTime,
    ) -> AllocationPlan;

    /// Static allocators are invoked once at start-up and never again.
    fn is_static(&self) -> bool {
        false
    }

    /// Allocators that (like INFaaS) make decisions on the critical path are
    /// re-invoked on every monitoring tick instead of the slower
    /// re-allocation period.
    fn on_critical_path(&self) -> bool {
        false
    }

    /// Solver statistics for the most recent [`allocate`](Self::allocate)
    /// call, where the allocator is solver-backed. Heuristic allocators
    /// return `None` and the controller skips the per-replan solver report.
    fn last_solve_stats(&self) -> Option<SolveStats> {
        None
    }
}

/// Builds capacity-proportional routing for an assignment-only plan and
/// fills in per-family capacity (shared by the heuristic allocators).
fn finish_plan(ctx: &AllocContext<'_>, plan: &mut AllocationPlan) {
    let mut routing: FamilyMap<Vec<(DeviceId, f64)>> = FamilyMap::default();
    let mut capacity: FamilyMap<f64> = FamilyMap::default();
    for (device, variant) in plan.assignments() {
        // Defensive: heuristics never assign down devices, but routing to
        // one would be unserveable either way.
        if !ctx.is_up(device) {
            continue;
        }
        let Some(spec) = ctx.cluster.device(device) else {
            continue;
        };
        let peak = ctx.store.peak_qps(variant, spec.device_type);
        if peak > 0.0 {
            routing[variant.family].push((device, peak));
            capacity[variant.family] += peak;
        }
    }
    for family in ModelFamily::ALL {
        plan.set_routing(family, std::mem::take(&mut routing[family]));
        plan.set_capacity(family, capacity[family]);
    }
}

/// The Proteus Resource Manager: jointly optimal model selection, placement
/// and query assignment via the §4 MILP, decoupled from the data path.
///
/// # Examples
///
/// ```
/// use proteus_core::schedulers::{Allocator, ProteusAllocator};
///
/// let allocator = ProteusAllocator::default();
/// assert_eq!(allocator.name(), "proteus");
/// assert!(!allocator.is_static());
/// ```
#[derive(Debug, Default)]
pub struct ProteusAllocator {
    /// MILP configuration (formulation, restriction, fairness, β).
    pub config: MilpConfig,
    /// §6.5 "w/o QA": replace optimal routing weights with uniform ones.
    pub uniform_query_assignment: bool,
    /// Statistics of the most recent solve.
    pub last_stats: Option<SolveStats>,
}

impl ProteusAllocator {
    /// The "w/o model selection" ablation: placement and assignment stay
    /// MILP-optimal, but only each family's most accurate variant may be
    /// hosted (no accuracy scaling).
    pub fn without_model_selection() -> Self {
        Self {
            config: MilpConfig {
                restriction: VariantRestriction::MostAccurate,
                ..MilpConfig::default()
            },
            ..Self::default()
        }
    }

    /// The "w/o query assignment" ablation: queries are spread uniformly
    /// over hosting devices regardless of their capacity.
    pub fn without_query_assignment() -> Self {
        Self {
            uniform_query_assignment: true,
            ..Self::default()
        }
    }

    /// The §7 fairness extension: maximize the worst family's accuracy.
    pub fn fair() -> Self {
        Self {
            config: MilpConfig {
                fairness: true,
                ..MilpConfig::default()
            },
            ..Self::default()
        }
    }
}

impl Allocator for ProteusAllocator {
    fn name(&self) -> &'static str {
        if self.uniform_query_assignment {
            "proteus-w/o-qa"
        } else if self.config.fairness {
            "proteus-fair"
        } else if self.config.restriction == VariantRestriction::MostAccurate {
            "proteus-w/o-ms"
        } else {
            "proteus"
        }
    }

    fn allocate(
        &mut self,
        ctx: &AllocContext<'_>,
        demand: &FamilyMap<f64>,
        current: Option<&AllocationPlan>,
        _now: SimTime,
    ) -> AllocationPlan {
        // Cleared up front so a failed solve does not leave a stale report
        // that callers would attribute (and double-count) to this replan.
        self.last_stats = None;
        match solve_allocation(ctx, demand, current, &self.config) {
            Ok(outcome) => {
                self.last_stats = Some(outcome.stats);
                let mut plan = outcome.plan;
                if self.uniform_query_assignment {
                    for family in ModelFamily::ALL {
                        let uniform: Vec<(DeviceId, f64)> = plan
                            .routing(family)
                            .iter()
                            .map(|&(d, _)| (d, 1.0))
                            .collect();
                        plan.set_routing(family, uniform);
                    }
                }
                plan
            }
            // Pathological infeasibility: keep serving under the old plan.
            Err(_) => current
                .cloned()
                .unwrap_or_else(|| AllocationPlan::empty(ctx.cluster.len())),
        }
    }

    fn last_solve_stats(&self) -> Option<SolveStats> {
        self.last_stats
    }
}

/// Which Clipper flavour to run (§6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClipperMode {
    /// Clipper-HT: least accurate variants, maximum throughput.
    HighThroughput,
    /// Clipper-HA: most accurate variants, maximum accuracy.
    HighAccuracy,
}

/// Clipper: a static allocation computed once at start-up with the MILP
/// restricted to one accuracy extreme; never re-allocated. Also stands in
/// for other static systems (TensorFlow-Serving, Triton), per §6.1.1.
#[derive(Debug)]
pub struct ClipperAllocator {
    mode: ClipperMode,
    config: MilpConfig,
    last_stats: Option<SolveStats>,
}

impl ClipperAllocator {
    /// Creates the chosen Clipper flavour.
    pub fn new(mode: ClipperMode) -> Self {
        let restriction = match mode {
            ClipperMode::HighThroughput => VariantRestriction::LeastAccurate,
            ClipperMode::HighAccuracy => VariantRestriction::MostAccurate,
        };
        Self {
            mode,
            config: MilpConfig {
                restriction,
                ..MilpConfig::default()
            },
            last_stats: None,
        }
    }
}

impl Allocator for ClipperAllocator {
    fn name(&self) -> &'static str {
        match self.mode {
            ClipperMode::HighThroughput => "clipper-ht",
            ClipperMode::HighAccuracy => "clipper-ha",
        }
    }

    fn is_static(&self) -> bool {
        true
    }

    fn allocate(
        &mut self,
        ctx: &AllocContext<'_>,
        demand: &FamilyMap<f64>,
        current: Option<&AllocationPlan>,
        _now: SimTime,
    ) -> AllocationPlan {
        self.last_stats = None;
        match solve_allocation(ctx, demand, current, &self.config) {
            Ok(outcome) => {
                self.last_stats = Some(outcome.stats);
                outcome.plan
            }
            Err(_) => current
                .cloned()
                .unwrap_or_else(|| AllocationPlan::empty(ctx.cluster.len())),
        }
    }

    fn last_solve_stats(&self) -> Option<SolveStats> {
        self.last_stats
    }
}

/// Sommelier: the initial placement comes from the MILP, but thereafter
/// each device is pinned to its family (*no dynamic model placement*); only
/// the hosted *variant* may change, via a per-family greedy
/// downgrade-until-capacity heuristic (§6.1.1). Doubles as the "w/o model
/// placement" ablation (§6.5).
#[derive(Debug, Default)]
pub struct SommelierAllocator {
    /// Per-device family pin, fixed after the first allocation.
    placement: Option<Vec<Option<ModelFamily>>>,
}

impl Allocator for SommelierAllocator {
    fn name(&self) -> &'static str {
        "sommelier"
    }

    fn allocate(
        &mut self,
        ctx: &AllocContext<'_>,
        demand: &FamilyMap<f64>,
        current: Option<&AllocationPlan>,
        _now: SimTime,
    ) -> AllocationPlan {
        let placement = match &self.placement {
            Some(p) => p.clone(),
            None => {
                // Bootstrap: one full MILP solve, then pin families.
                let plan = match solve_allocation(ctx, demand, current, &MilpConfig::default()) {
                    Ok(o) => o.plan,
                    Err(_) => AllocationPlan::empty(ctx.cluster.len()),
                };
                let pins: Vec<Option<ModelFamily>> = (0..ctx.cluster.len())
                    .map(|i| plan.assignment(DeviceId(i as u32)).map(|v| v.family))
                    .collect();
                self.placement = Some(pins.clone());
                pins
            }
        };

        // Variant selection per pinned family: start from the most accurate
        // feasible variant everywhere, then greedily downgrade the step that
        // gains the most capacity until demand fits (or nothing is left to
        // downgrade).
        let mut plan = AllocationPlan::empty(ctx.cluster.len());
        for family in ModelFamily::ALL {
            let devices: Vec<DeviceId> = placement
                .iter()
                .enumerate()
                .filter(|(_, f)| **f == Some(family))
                .map(|(i, _)| DeviceId(i as u32))
                .collect();
            if devices.is_empty() {
                continue;
            }
            // Ordered variant list, least accurate first.
            let variants: Vec<VariantId> = ctx.zoo.variants_of(family).map(|v| v.id()).collect();
            // Per-device: index into `variants`, starting at the most
            // accurate feasible one.
            let peak = |v: VariantId, d: DeviceId| {
                if !ctx.is_up(d) {
                    return 0.0;
                }
                ctx.cluster
                    .device(d)
                    .map_or(0.0, |s| ctx.store.peak_qps(v, s.device_type))
            };
            let mut chosen: Vec<(DeviceId, usize)> = Vec::new();
            for &d in &devices {
                let best = (0..variants.len())
                    .rev()
                    .find(|&i| peak(variants[i], d) > 0.0);
                if let Some(i) = best {
                    chosen.push((d, i));
                }
            }
            let cap = |chosen: &[(DeviceId, usize)]| -> f64 {
                chosen.iter().map(|&(d, i)| peak(variants[i], d)).sum()
            };
            while cap(&chosen) < demand[family] {
                // Best single-step downgrade by capacity gain.
                let step = chosen
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, i))| i > 0)
                    .map(|(idx, &(d, i))| {
                        let gain = peak(variants[i - 1], d) - peak(variants[i], d);
                        (idx, gain)
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                match step {
                    Some((idx, gain)) if gain > 0.0 => chosen[idx].1 -= 1,
                    _ => break,
                }
            }
            for (d, i) in chosen {
                plan.assign(d, Some(variants[i]));
            }
        }
        finish_plan(ctx, &mut plan);
        plan
    }
}

/// INFaaS-Accuracy: fully dynamic selection *and* placement, but via a
/// greedy heuristic running on the critical path (§6.1.1) — it reacts fast
/// yet settles in local optima, unlike the global MILP.
///
/// Greedy rules per invocation:
/// 1. **Reclaim** devices from families holding excess capacity.
/// 2. **Fix deficits** by first claiming free devices (hosting the most
///    accurate variant that covers the remaining gap, else the family's
///    fastest), then downgrading existing hosts one step at a time.
/// 3. **Recover accuracy** by at most one single-step upgrade per family per
///    invocation when spare capacity allows — the slow recovery that keeps
///    it below Proteus' effective accuracy after bursts.
#[derive(Debug)]
pub struct InfaasAccuracyAllocator {
    /// Capacity headroom kept above demand when upgrading/reclaiming.
    pub headroom: f64,
}

impl Default for InfaasAccuracyAllocator {
    fn default() -> Self {
        Self { headroom: 1.15 }
    }
}

impl Allocator for InfaasAccuracyAllocator {
    fn name(&self) -> &'static str {
        "infaas-accuracy"
    }

    fn on_critical_path(&self) -> bool {
        true
    }

    fn allocate(
        &mut self,
        ctx: &AllocContext<'_>,
        demand: &FamilyMap<f64>,
        current: Option<&AllocationPlan>,
        _now: SimTime,
    ) -> AllocationPlan {
        let mut assignment: Vec<Option<VariantId>> = (0..ctx.cluster.len())
            .map(|i| {
                let d = DeviceId(i as u32);
                // A down device's replica is gone; forget it so the deficit
                // pass re-provisions elsewhere.
                if !ctx.is_up(d) {
                    return None;
                }
                current.and_then(|c| c.assignment(d))
            })
            .collect();
        let peak_of = |v: VariantId, d: usize| {
            let id = DeviceId(d as u32);
            if !ctx.is_up(id) {
                return 0.0;
            }
            ctx.cluster
                .device(id)
                .map_or(0.0, |s| ctx.store.peak_qps(v, s.device_type))
        };
        let capacity = |assignment: &[Option<VariantId>], family: ModelFamily| -> f64 {
            assignment
                .iter()
                .enumerate()
                .filter_map(|(d, v)| v.filter(|v| v.family == family).map(|v| peak_of(v, d)))
                .sum()
        };

        // 1. Reclaim from over-provisioned families (smallest hosts first).
        for family in ModelFamily::ALL {
            let need = demand[family] * self.headroom;
            loop {
                let cap = capacity(&assignment, family);
                let victim = assignment
                    .iter()
                    .enumerate()
                    .filter_map(|(d, v)| {
                        v.filter(|v| v.family == family).map(|v| (d, peak_of(v, d)))
                    })
                    .min_by(|a, b| a.1.total_cmp(&b.1));
                match victim {
                    Some((d, peak)) if cap - peak >= need => assignment[d] = None,
                    _ => break,
                }
            }
        }

        // 2. Fix deficits in fixed registration order — INFaaS decides as
        //    queries arrive rather than solving globally, so early families
        //    grab the fastest free devices and later ones inherit whatever
        //    is left: exactly the ordering-induced local optima the paper
        //    attributes its peak-time degradation to.
        for family in ModelFamily::ALL {
            let variants: Vec<VariantId> = ctx.zoo.variants_of(family).map(|v| v.id()).collect();
            loop {
                let deficit = demand[family] - capacity(&assignment, family);
                if deficit <= 0.0 {
                    break;
                }
                // Claim the fastest free *live* device first.
                let free = (0..assignment.len())
                    .filter(|&d| assignment[d].is_none() && ctx.is_up(DeviceId(d as u32)))
                    .max_by(|&a, &b| {
                        let pa = variants.iter().map(|&v| peak_of(v, a)).fold(0.0, f64::max);
                        let pb = variants.iter().map(|&v| peak_of(v, b)).fold(0.0, f64::max);
                        pa.total_cmp(&pb)
                    });
                if let Some(d) = free {
                    // Most accurate variant that covers the gap, else the
                    // highest-capacity one.
                    let covering = variants
                        .iter()
                        .rev()
                        .find(|&&v| peak_of(v, d) >= deficit)
                        .copied();
                    let fallback = variants
                        .iter()
                        .copied()
                        .max_by(|&a, &b| peak_of(a, d).total_cmp(&peak_of(b, d)));
                    let pick = covering.or(fallback).filter(|&v| peak_of(v, d) > 0.0);
                    if let Some(v) = pick {
                        assignment[d] = Some(v);
                        continue;
                    }
                }
                // No free device: single-step downgrade with max gain.
                let step = assignment
                    .iter()
                    .enumerate()
                    .filter_map(|(d, v)| {
                        let v = (*v)?;
                        if v.family != family || v.index == 0 {
                            return None;
                        }
                        let lower = VariantId {
                            family,
                            index: v.index - 1,
                        };
                        let gain = peak_of(lower, d) - peak_of(v, d);
                        (gain > 0.0).then_some((d, lower, gain))
                    })
                    .max_by(|a, b| a.2.total_cmp(&b.2));
                match step {
                    Some((d, lower, _)) => assignment[d] = Some(lower),
                    None => break, // stuck: local optimum, deficit remains
                }
            }
        }

        // 3. Slow accuracy recovery: one upgrade step per family if headroom
        //    allows.
        for family in ModelFamily::ALL {
            let need = demand[family] * self.headroom;
            let upgrade = assignment
                .iter()
                .enumerate()
                .filter_map(|(d, v)| {
                    let v = (*v)?;
                    if v.family != family {
                        return None;
                    }
                    let higher = VariantId {
                        family,
                        index: v.index + 1,
                    };
                    let new_peak = peak_of(higher, d);
                    if new_peak <= 0.0 {
                        return None;
                    }
                    let loss = peak_of(v, d) - new_peak;
                    Some((d, higher, loss))
                })
                .min_by(|a, b| a.2.total_cmp(&b.2));
            if let Some((d, higher, _)) = upgrade {
                let old = assignment[d];
                assignment[d] = Some(higher);
                if capacity(&assignment, family) < need {
                    assignment[d] = old; // would starve the family: revert
                }
            }
        }

        let mut plan = AllocationPlan::empty(ctx.cluster.len());
        for (d, v) in assignment.into_iter().enumerate() {
            plan.assign(DeviceId(d as u32), v);
        }
        finish_plan(ctx, &mut plan);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_profiler::{Cluster, ModelZoo, ProfileStore, SloPolicy};

    struct Env {
        cluster: Cluster,
        zoo: ModelZoo,
        store: ProfileStore,
    }

    impl Env {
        fn new(cpu: u32, gtx: u32, v100: u32) -> Self {
            let zoo = ModelZoo::paper_table3();
            let store = ProfileStore::build(&zoo, SloPolicy::default());
            Self {
                cluster: Cluster::with_counts(cpu, gtx, v100),
                zoo,
                store,
            }
        }
        fn ctx(&self) -> AllocContext<'_> {
            AllocContext {
                cluster: &self.cluster,
                zoo: &self.zoo,
                store: &self.store,
                down: &[],
            }
        }
    }

    fn demand(f: ModelFamily, qps: f64) -> FamilyMap<f64> {
        let mut d = FamilyMap::default();
        d[f] = qps;
        d
    }

    #[test]
    fn clipper_ht_hosts_least_accurate() {
        let env = Env::new(1, 1, 2);
        let mut c = ClipperAllocator::new(ClipperMode::HighThroughput);
        assert!(c.is_static());
        let plan = c.allocate(
            &env.ctx(),
            &demand(ModelFamily::EfficientNet, 100.0),
            None,
            SimTime::ZERO,
        );
        assert_eq!(plan.validate(&env.ctx()), None);
        for (_, v) in plan.assignments() {
            assert_eq!(v.index, 0, "HT must host index-0 variants, got {v}");
        }
    }

    #[test]
    fn clipper_ha_hosts_most_accurate() {
        let env = Env::new(1, 1, 2);
        let mut c = ClipperAllocator::new(ClipperMode::HighAccuracy);
        let plan = c.allocate(
            &env.ctx(),
            &demand(ModelFamily::EfficientNet, 20.0),
            None,
            SimTime::ZERO,
        );
        assert_eq!(plan.validate(&env.ctx()), None);
        for (_, v) in plan.assignments() {
            let best = env.zoo.most_accurate(v.family).unwrap().id();
            assert_eq!(v, best, "HA must host most accurate variants");
        }
    }

    #[test]
    fn sommelier_pins_placement_but_swaps_variants() {
        let env = Env::new(2, 2, 2);
        let mut s = SommelierAllocator::default();
        let low = s.allocate(
            &env.ctx(),
            &demand(ModelFamily::EfficientNet, 20.0),
            None,
            SimTime::ZERO,
        );
        let families_low: Vec<Option<ModelFamily>> = (0..env.cluster.len())
            .map(|i| low.assignment(DeviceId(i as u32)).map(|v| v.family))
            .collect();
        // Second call with much higher demand: families stay pinned, variants
        // may only move within the family.
        let high = s.allocate(
            &env.ctx(),
            &demand(ModelFamily::EfficientNet, 900.0),
            Some(&low),
            SimTime::from_secs(30),
        );
        let families_high: Vec<Option<ModelFamily>> = (0..env.cluster.len())
            .map(|i| high.assignment(DeviceId(i as u32)).map(|v| v.family))
            .collect();
        for (a, b) in families_low.iter().zip(&families_high) {
            if b.is_some() {
                assert_eq!(a, b, "sommelier must not move families across devices");
            }
        }
        assert_eq!(high.validate(&env.ctx()), None);
        // And the high-demand plan must have scaled accuracy down.
        let acc_low = low.planned_accuracy(&env.ctx())[ModelFamily::EfficientNet];
        let acc_high = high.planned_accuracy(&env.ctx())[ModelFamily::EfficientNet];
        assert!(acc_high < acc_low, "{acc_high} !< {acc_low}");
    }

    #[test]
    fn infaas_scales_accuracy_under_load() {
        let env = Env::new(2, 2, 2);
        let mut inf = InfaasAccuracyAllocator::default();
        assert!(inf.on_critical_path());
        let low = inf.allocate(
            &env.ctx(),
            &demand(ModelFamily::EfficientNet, 20.0),
            None,
            SimTime::ZERO,
        );
        assert_eq!(low.validate(&env.ctx()), None);
        assert!(low.capacity(ModelFamily::EfficientNet) >= 20.0);
        let high = inf.allocate(
            &env.ctx(),
            &demand(ModelFamily::EfficientNet, 900.0),
            Some(&low),
            SimTime::from_secs(1),
        );
        assert_eq!(high.validate(&env.ctx()), None);
        assert!(high.capacity(ModelFamily::EfficientNet) > low.capacity(ModelFamily::EfficientNet));
        let acc_low = low.planned_accuracy(&env.ctx())[ModelFamily::EfficientNet];
        let acc_high = high.planned_accuracy(&env.ctx())[ModelFamily::EfficientNet];
        assert!(acc_high < acc_low);
    }

    #[test]
    fn infaas_recovers_accuracy_slowly() {
        let env = Env::new(0, 0, 4);
        let mut inf = InfaasAccuracyAllocator::default();
        let mut plan = inf.allocate(
            &env.ctx(),
            &demand(ModelFamily::EfficientNet, 1500.0),
            None,
            SimTime::ZERO,
        );
        let stressed = plan.planned_accuracy(&env.ctx())[ModelFamily::EfficientNet];
        // Demand collapses; recovery takes multiple invocations because only
        // one upgrade step per family per call is allowed.
        let mut accs = vec![stressed];
        for i in 0..12 {
            plan = inf.allocate(
                &env.ctx(),
                &demand(ModelFamily::EfficientNet, 10.0),
                Some(&plan),
                SimTime::from_secs(i + 1),
            );
            accs.push(plan.planned_accuracy(&env.ctx())[ModelFamily::EfficientNet]);
        }
        let last = *accs.last().unwrap();
        assert!(last > stressed, "accuracy must recover: {accs:?}");
        // Not instantaneous: the second sample is below the final value.
        assert!(accs[1] < last, "recovery must take several steps: {accs:?}");
    }

    #[test]
    fn heuristic_allocators_avoid_down_devices() {
        let env = Env::new(2, 2, 2);
        let down = [DeviceId(4)]; // one of the V100s
        let ctx = AllocContext {
            cluster: &env.cluster,
            zoo: &env.zoo,
            store: &env.store,
            down: &down,
        };
        let d = demand(ModelFamily::EfficientNet, 300.0);
        let mut inf = InfaasAccuracyAllocator::default();
        // Seed with a full-cluster plan so the down device starts assigned.
        let seeded = inf.allocate(&env.ctx(), &d, None, SimTime::ZERO);
        let plan = inf.allocate(&ctx, &d, Some(&seeded), SimTime::from_secs(1));
        assert_eq!(plan.assignment(DeviceId(4)), None);
        let mut som = SommelierAllocator::default();
        let splan = som.allocate(&ctx, &d, None, SimTime::ZERO);
        assert_eq!(splan.assignment(DeviceId(4)), None);
        for p in [&plan, &splan] {
            for family in ModelFamily::ALL {
                for &(dev, _) in p.routing(family) {
                    assert_ne!(dev, DeviceId(4), "routing to down device");
                }
            }
        }
    }

    #[test]
    fn proteus_ablation_names() {
        assert_eq!(ProteusAllocator::default().name(), "proteus");
        assert_eq!(
            ProteusAllocator::without_model_selection().name(),
            "proteus-w/o-ms"
        );
        assert_eq!(
            ProteusAllocator::without_query_assignment().name(),
            "proteus-w/o-qa"
        );
        assert_eq!(ProteusAllocator::fair().name(), "proteus-fair");
    }

    #[test]
    fn proteus_uniform_qa_flattens_weights() {
        let env = Env::new(2, 2, 2);
        let mut p = ProteusAllocator::without_query_assignment();
        let plan = p.allocate(
            &env.ctx(),
            &demand(ModelFamily::EfficientNet, 200.0),
            None,
            SimTime::ZERO,
        );
        for family in ModelFamily::ALL {
            for &(_, w) in plan.routing(family) {
                assert_eq!(w, 1.0);
            }
        }
        assert!(p.last_stats.is_some());
    }
}
