//! Property-based tests of the workload generators and trace I/O.

use proptest::prelude::*;
use proteus_profiler::ModelFamily;
use proteus_workloads::dist::Zipf;
use proteus_workloads::io::{arrivals_from_csv, arrivals_to_csv, RecordedTrace};
use proteus_workloads::{
    ArrivalKind, ArrivalProcess, DemandTrace, DiurnalTrace, FlatTrace, TraceBuilder,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zipf masses sum to one and decrease with rank for any size/exponent.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..40, alpha in 0.0f64..3.0) {
        let z = Zipf::new(n, alpha);
        let total: f64 = (1..=n).map(|r| z.mass(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for r in 1..n {
            prop_assert!(z.mass(r) >= z.mass(r + 1) - 1e-12);
        }
    }

    /// Arrival processes hit their configured rate within sampling noise,
    /// for every inter-arrival law.
    #[test]
    fn arrival_rates_converge(rate in 20.0f64..400.0, seed in 0u64..50) {
        for kind in [
            ArrivalKind::Uniform,
            ArrivalKind::Poisson,
            ArrivalKind::Gamma { shape: 0.5 },
        ] {
            let n = ArrivalProcess::new(kind, rate, seed)
                .take_for_secs(30.0)
                .len() as f64;
            let observed = n / 30.0;
            prop_assert!(
                (observed - rate).abs() < 6.0 * (rate / 30.0).sqrt().max(1.0),
                "{kind:?}: observed {observed} vs {rate}"
            );
        }
    }

    /// Trace-builder output is time-sorted, within the trace horizon, and
    /// totals the integrated demand within Poisson noise.
    #[test]
    fn builder_output_is_well_formed(qps in 10.0f64..400.0, secs in 3u32..30, seed in 0u64..20) {
        let trace = FlatTrace { qps, secs };
        let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
            .seed(seed)
            .build(&trace);
        for w in arrivals.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        let horizon = proteus_sim::SimTime::from_secs(secs as u64);
        prop_assert!(arrivals.iter().all(|a| a.at < horizon));
        let expect = qps * secs as f64;
        prop_assert!(
            (arrivals.len() as f64 - expect).abs() < 6.0 * expect.sqrt().max(1.0),
            "{} vs {expect}", arrivals.len()
        );
        prop_assert!(arrivals.iter().all(|a| a.cost == 1.0));
    }

    /// Arrival CSV round-trips exactly for any generated stream, including
    /// variable input costs.
    #[test]
    fn arrival_csv_round_trips(seed in 0u64..30, shape in 0.5f64..4.0) {
        let arrivals = TraceBuilder::new(vec![ModelFamily::Bert, ModelFamily::ResNet])
            .seed(seed)
            .variable_input_sizes(shape)
            .build(&FlatTrace { qps: 120.0, secs: 4 });
        let parsed = arrivals_from_csv(&arrivals_to_csv(&arrivals)).unwrap();
        prop_assert_eq!(parsed.len(), arrivals.len());
        for (a, b) in parsed.iter().zip(&arrivals) {
            prop_assert_eq!(a.at, b.at);
            prop_assert_eq!(a.family, b.family);
            prop_assert!((a.cost - b.cost).abs() < 1e-6);
        }
    }

    /// Recorded traces capture any diurnal curve exactly (up to CSV
    /// rounding) and speed-up preserves total volume.
    #[test]
    fn recorded_traces_capture_and_compress(
        secs in 20u32..120,
        base in 10.0f64..200.0,
        amp in 0.0f64..800.0,
        factor in 1u32..6,
    ) {
        let trace = DiurnalTrace::paper_like(secs, base, base + amp, 3);
        let recorded = RecordedTrace::capture(&trace);
        prop_assert_eq!(recorded.duration_secs(), secs);
        let round = RecordedTrace::from_csv(&recorded.to_csv()).unwrap();
        for s in 0..secs {
            prop_assert!((round.qps_at(s) - trace.qps_at(s)).abs() < 1e-4);
        }
        let fast = recorded.sped_up(factor);
        let total_before: f64 = (0..secs).map(|s| recorded.qps_at(s)).sum();
        let total_after: f64 = (0..fast.duration_secs()).map(|s| fast.qps_at(s)).sum();
        prop_assert!((total_before - total_after).abs() < 1e-6);
        prop_assert_eq!(fast.duration_secs(), secs.div_ceil(factor));
    }
}
