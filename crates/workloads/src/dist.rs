//! From-scratch distribution samplers over `rand`'s uniform source.
//!
//! Only a uniform `f64` source is assumed; everything else — exponential,
//! normal (Box–Muller), Gamma (Marsaglia–Tsang), Zipf and Poisson counts —
//! is derived here. This keeps the workspace free of `rand_distr` while
//! still exercising the exact distributions the paper uses.

use rand::Rng;

/// Samples `Exp(rate)`: the inter-arrival time of a Poisson process.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = proteus_workloads::dist::exponential(&mut rng, 4.0);
/// assert!(x >= 0.0);
/// ```
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    // Inverse CDF on (0, 1]; `1 - U` avoids ln(0).
    let u: f64 = rng.random::<f64>();
    -(1.0 - u).ln() / rate
}

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Resample u1 = 0 (probability ~2^-53) to keep ln finite.
    let mut u1: f64 = rng.random();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.random();
    }
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `Normal(mean, std_dev)`.
///
/// # Panics
///
/// Panics if `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Samples `Gamma(shape, scale)` with the Marsaglia–Tsang method.
///
/// Shapes below one are handled with the standard boosting identity
/// `Gamma(a) = Gamma(a + 1) · U^(1/a)`. The paper's micro-burst trace uses
/// shape 0.05 (§6.4), deep inside that regime.
///
/// # Panics
///
/// Panics if `shape` or `scale` is not strictly positive.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    assert!(scale > 0.0, "gamma scale must be positive, got {scale}");
    if shape < 1.0 {
        let boost = {
            let mut u: f64 = rng.random();
            while u <= f64::MIN_POSITIVE {
                u = rng.random();
            }
            u.powf(1.0 / shape)
        };
        return boost * gamma(rng, shape + 1.0, scale);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        // Squeeze check, then full acceptance check.
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

/// Samples a Poisson count with mean `lambda`.
///
/// Uses Knuth's product method for small means and a normal approximation
/// (with continuity correction, clamped at zero) for large ones, which is
/// plenty for per-second arrival counts.
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson_count<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson mean must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u64
    }
}

/// A Zipf(α) distribution over ranks `1..=n`.
///
/// The paper splits query demand across model families with α = 1.001
/// (§6.1.3). Sampling and the exact probability mass are both exposed; the
/// trace generator uses [`Zipf::mass`] to split aggregate QPS
/// deterministically.
///
/// # Examples
///
/// ```
/// use proteus_workloads::dist::Zipf;
///
/// let zipf = Zipf::new(9, 1.001);
/// let total: f64 = (1..=9).map(|r| zipf.mass(r)).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// assert!(zipf.mass(1) > zipf.mass(9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: usize,
    alpha: f64,
    norm: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(alpha >= 0.0, "zipf exponent must be non-negative");
        let norm: f64 = (1..=n).map(|r| (r as f64).powf(-alpha)).sum();
        Self { n, alpha, norm }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.n
    }

    /// Probability mass of rank `rank` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero or exceeds the number of ranks.
    pub fn mass(&self, rank: usize) -> f64 {
        assert!(
            (1..=self.n).contains(&rank),
            "rank {rank} out of range 1..={}",
            self.n
        );
        (rank as f64).powf(-self.alpha) / self.norm
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.random();
        for rank in 1..=self.n {
            u -= self.mass(rank);
            if u <= 0.0 {
                return rank;
            }
        }
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let samples: Vec<f64> = (0..200_000).map(|_| exponential(&mut r, 5.0)).collect();
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 0.2).abs() < 0.005, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..200_000).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_moments_large_shape() {
        let mut r = rng();
        let (shape, scale) = (4.0, 0.5);
        let samples: Vec<f64> = (0..200_000).map(|_| gamma(&mut r, shape, scale)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - shape * scale).abs() < 0.02, "mean {mean}");
        assert!((var - shape * scale * scale).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_moments_tiny_shape() {
        // The paper's micro-burst regime: shape 0.05. Mean = shape·scale.
        let mut r = rng();
        let (shape, scale) = (0.05, 20.0);
        let samples: Vec<f64> = (0..400_000).map(|_| gamma(&mut r, shape, scale)).collect();
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
        // Tiny shapes are extremely bursty: most samples are near zero.
        let near_zero = samples.iter().filter(|&&x| x < 1e-3).count() as f64;
        assert!(near_zero / samples.len() as f64 > 0.5);
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut r = rng();
        for lambda in [0.5, 4.0, 80.0] {
            let samples: Vec<f64> = (0..100_000)
                .map(|_| poisson_count(&mut r, lambda) as f64)
                .collect();
            let (mean, var) = mean_and_var(&samples);
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "λ={lambda} mean {mean}"
            );
            assert!(
                (var - lambda).abs() < 0.08 * lambda.max(1.0),
                "λ={lambda} var {var}"
            );
        }
        assert_eq!(poisson_count(&mut r, 0.0), 0);
    }

    #[test]
    fn zipf_mass_sums_to_one_and_is_monotone() {
        let zipf = Zipf::new(9, 1.001);
        let masses: Vec<f64> = (1..=9).map(|r| zipf.mass(r)).collect();
        assert!((masses.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for w in masses.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn zipf_sampling_matches_mass() {
        let zipf = Zipf::new(5, 1.2);
        let mut r = rng();
        let mut counts = [0u32; 5];
        let n = 200_000;
        for _ in 0..n {
            counts[zipf.sample(&mut r) - 1] += 1;
        }
        for rank in 1..=5 {
            let empirical = counts[rank - 1] as f64 / n as f64;
            assert!(
                (empirical - zipf.mass(rank)).abs() < 0.01,
                "rank {rank}: {empirical} vs {}",
                zipf.mass(rank)
            );
        }
    }

    #[test]
    fn zipf_uniform_when_alpha_zero() {
        let zipf = Zipf::new(4, 0.0);
        for r in 1..=4 {
            assert!((zipf.mass(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zipf_mass_rejects_rank_zero() {
        Zipf::new(3, 1.0).mass(0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| gamma(&mut r, 0.05, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| gamma(&mut r, 0.05, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
