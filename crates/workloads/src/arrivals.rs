//! Micro-scale arrival processes (Fig. 6's uniform / Poisson / Gamma traces).

use proteus_sim::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dist;

/// The inter-arrival distribution of an [`ArrivalProcess`].
///
/// All three kinds produce the same long-run rate; they differ only in
/// burstiness, which is exactly the variable Fig. 6 isolates when comparing
/// batching policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Evenly spaced arrivals: gap = 1/rate exactly.
    Uniform,
    /// Poisson process: exponential gaps.
    Poisson,
    /// Gamma-distributed gaps with the given shape (scale chosen so the mean
    /// gap stays 1/rate). Shapes ≪ 1 create heavy micro-bursts; the paper
    /// uses 0.05.
    Gamma {
        /// Gamma shape parameter.
        shape: f64,
    },
}

/// An infinite stream of arrival timestamps at a fixed average rate.
///
/// # Examples
///
/// ```
/// use proteus_workloads::{ArrivalKind, ArrivalProcess};
///
/// let mut p = ArrivalProcess::new(ArrivalKind::Uniform, 10.0, 0);
/// let first = p.next_arrival();
/// let second = p.next_arrival();
/// assert_eq!((second - first).as_millis_f64(), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    rate: f64,
    rng: StdRng,
    clock: f64,
}

impl ArrivalProcess {
    /// Creates a process with `rate` arrivals per second on average.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive, or if a Gamma shape is not
    /// strictly positive.
    pub fn new(kind: ArrivalKind, rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive, got {rate}");
        if let ArrivalKind::Gamma { shape } = kind {
            assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
        }
        Self {
            kind,
            rate,
            rng: StdRng::seed_from_u64(seed),
            clock: 0.0,
        }
    }

    /// The configured average rate in arrivals per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Advances to and returns the next arrival timestamp.
    pub fn next_arrival(&mut self) -> SimTime {
        let gap = match self.kind {
            ArrivalKind::Uniform => 1.0 / self.rate,
            ArrivalKind::Poisson => dist::exponential(&mut self.rng, self.rate),
            ArrivalKind::Gamma { shape } => {
                // Mean gap must be 1/rate = shape · scale.
                dist::gamma(&mut self.rng, shape, 1.0 / (shape * self.rate))
            }
        };
        self.clock += gap;
        SimTime::from_secs_f64(self.clock)
    }

    /// Collects every arrival with timestamp strictly less than `secs`.
    pub fn take_for_secs(&mut self, secs: f64) -> Vec<SimTime> {
        let horizon = SimTime::from_secs_f64(secs);
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_of(kind: ArrivalKind, secs: f64) -> f64 {
        let mut p = ArrivalProcess::new(kind, 200.0, 99);
        p.take_for_secs(secs).len() as f64 / secs
    }

    #[test]
    fn all_kinds_hit_the_target_rate() {
        for kind in [
            ArrivalKind::Uniform,
            ArrivalKind::Poisson,
            ArrivalKind::Gamma { shape: 0.05 },
        ] {
            let r = rate_of(kind, 60.0);
            assert!((r - 200.0).abs() < 12.0, "{kind:?} observed rate {r}");
        }
    }

    #[test]
    fn uniform_gaps_are_constant() {
        let mut p = ArrivalProcess::new(ArrivalKind::Uniform, 50.0, 1);
        let times = p.take_for_secs(2.0);
        for w in times.windows(2) {
            assert_eq!((w[1] - w[0]).as_millis_f64(), 20.0);
        }
    }

    #[test]
    fn gamma_is_burstier_than_poisson_is_burstier_than_uniform() {
        // Burstiness measured as the coefficient of variation of gaps.
        let cv = |kind: ArrivalKind| {
            let mut p = ArrivalProcess::new(kind, 100.0, 3);
            let times = p.take_for_secs(120.0);
            let gaps: Vec<f64> = times
                .windows(2)
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let u = cv(ArrivalKind::Uniform);
        let p = cv(ArrivalKind::Poisson);
        let g = cv(ArrivalKind::Gamma { shape: 0.05 });
        assert!(u < 0.01, "uniform cv {u}");
        assert!((p - 1.0).abs() < 0.1, "poisson cv {p}");
        assert!(g > 2.5, "gamma cv {g}");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = ArrivalProcess::new(ArrivalKind::Poisson, 1000.0, 5);
        let times = p.take_for_secs(5.0);
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a =
            ArrivalProcess::new(ArrivalKind::Gamma { shape: 0.05 }, 100.0, 11).take_for_secs(3.0);
        let b =
            ArrivalProcess::new(ArrivalKind::Gamma { shape: 0.05 }, 100.0, 11).take_for_secs(3.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        ArrivalProcess::new(ArrivalKind::Poisson, 0.0, 0);
    }
}
