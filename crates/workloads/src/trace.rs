//! Macro-scale demand traces (Twitter-like diurnal and synthetic bursty).

use proteus_profiler::ModelFamily;
use proteus_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{self, Zipf};

/// A per-second aggregate demand curve in queries per second.
///
/// Implementors describe *macro-scale* demand; [`TraceBuilder`] turns a
/// curve into individual query arrivals with Poisson micro-structure and a
/// Zipf split across model families, exactly as §6.1.3 constructs the
/// evaluation workload.
pub trait DemandTrace {
    /// Total demand during second `second` (i.e. `[second, second + 1)`).
    fn qps_at(&self, second: u32) -> f64;

    /// Trace length in whole seconds.
    fn duration_secs(&self) -> u32;

    /// The largest per-second demand over the whole trace.
    fn peak_qps(&self) -> f64 {
        (0..self.duration_secs())
            .map(|s| self.qps_at(s))
            .fold(0.0, f64::max)
    }
}

/// Constant demand — used by the batching experiments (Fig. 6), where the
/// load is fixed and only the inter-arrival distribution varies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatTrace {
    /// Constant demand in QPS.
    pub qps: f64,
    /// Trace length in seconds.
    pub secs: u32,
}

impl DemandTrace for FlatTrace {
    fn qps_at(&self, _second: u32) -> f64 {
        self.qps
    }

    fn duration_secs(&self) -> u32 {
        self.secs
    }
}

/// A Twitter-like diurnal demand curve: a baseline, two smooth daily peaks
/// (compressed by the paper's constant speed-up factor into a ~24 minute
/// window), multiplicative noise, and occasional spikes.
///
/// # Examples
///
/// ```
/// use proteus_workloads::{DemandTrace, DiurnalTrace};
///
/// let trace = DiurnalTrace::paper_like(24 * 60, 200.0, 1000.0, 7);
/// assert!(trace.peak_qps() <= 1000.0 * 1.25);
/// assert!(trace.qps_at(0) < trace.peak_qps());
/// ```
#[derive(Debug, Clone)]
pub struct DiurnalTrace {
    per_second: Vec<f64>,
}

impl DiurnalTrace {
    /// Builds a diurnal trace.
    ///
    /// * `secs` — duration;
    /// * `base_qps` — off-peak demand;
    /// * `peak_qps` — demand at the top of each diurnal peak (before noise);
    /// * `cycles` — number of diurnal peaks within the trace;
    /// * `noise_frac` — multiplicative Gaussian noise (σ as a fraction);
    /// * `spike_prob`/`spike_gain` — per-second probability and amplitude of
    ///   short demand spikes;
    /// * `seed` — RNG seed (the curve is deterministic given it).
    ///
    /// # Panics
    ///
    /// Panics if `peak_qps < base_qps`, any rate is negative, or
    /// `secs == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        secs: u32,
        base_qps: f64,
        peak_qps: f64,
        cycles: u32,
        noise_frac: f64,
        spike_prob: f64,
        spike_gain: f64,
        seed: u64,
    ) -> Self {
        assert!(secs > 0, "trace must be at least one second long");
        assert!(
            base_qps >= 0.0 && peak_qps >= base_qps,
            "need 0 <= base ({base_qps}) <= peak ({peak_qps})"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let amp = peak_qps - base_qps;
        let mut per_second = Vec::with_capacity(secs as usize);
        let mut spike_left = 0u32;
        for s in 0..secs {
            let phase = s as f64 / secs as f64 * cycles as f64 * std::f64::consts::TAU;
            // Raised-cosine bump squared: smooth peaks, wide troughs.
            let diurnal = (0.5 - 0.5 * phase.cos()).powi(2);
            let mut qps = base_qps + amp * diurnal;
            if spike_left > 0 {
                spike_left -= 1;
                qps *= spike_gain;
            } else if rng.random::<f64>() < spike_prob {
                spike_left = 5 + (rng.random::<f64>() * 10.0) as u32;
            }
            qps *= (1.0 + noise_frac * dist::standard_normal(&mut rng)).max(0.1);
            per_second.push(qps.max(0.0));
        }
        Self { per_second }
    }

    /// The configuration used throughout the paper-shaped experiments:
    /// two diurnal peaks, 8 % noise, rare 1.25× spikes.
    pub fn paper_like(secs: u32, base_qps: f64, peak_qps: f64, seed: u64) -> Self {
        Self::new(secs, base_qps, peak_qps, 2, 0.04, 0.003, 1.25, seed)
    }
}

impl DemandTrace for DiurnalTrace {
    fn qps_at(&self, second: u32) -> f64 {
        self.per_second.get(second as usize).copied().unwrap_or(0.0)
    }

    fn duration_secs(&self) -> u32 {
        self.per_second.len() as u32
    }
}

/// Macro-scale burst trace (Fig. 5): flat low demand interrupted by a high
/// plateau.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyTrace {
    /// Demand outside the burst, QPS.
    pub low_qps: f64,
    /// Demand during the burst, QPS.
    pub high_qps: f64,
    /// Second at which the burst starts.
    pub burst_start: u32,
    /// Second at which the burst ends (exclusive).
    pub burst_end: u32,
    /// Total duration, seconds.
    pub secs: u32,
}

impl BurstyTrace {
    /// The Fig. 5-shaped default: 24 minutes, a burst in the middle third.
    pub fn paper_like(low_qps: f64, high_qps: f64) -> Self {
        let secs = 24 * 60;
        Self {
            low_qps,
            high_qps,
            burst_start: secs / 3,
            burst_end: 2 * secs / 3,
            secs,
        }
    }
}

impl DemandTrace for BurstyTrace {
    fn qps_at(&self, second: u32) -> f64 {
        if (self.burst_start..self.burst_end).contains(&second) {
            self.high_qps
        } else {
            self.low_qps
        }
    }

    fn duration_secs(&self) -> u32 {
        self.secs
    }
}

/// One query arrival: a timestamp, the family (application) it belongs to,
/// and its input cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryArrival {
    /// Arrival timestamp.
    pub at: SimTime,
    /// The query type (one registered application per family, §6.1.2).
    pub family: ModelFamily,
    /// Input cost in nominal units (1.0 = fixed-size input; §7 "Varying
    /// Input Sizes" extension samples variable costs for NLP families).
    pub cost: f64,
}

impl QueryArrival {
    /// A nominal unit-cost arrival.
    pub fn new(at: SimTime, family: ModelFamily) -> Self {
        Self {
            at,
            family,
            cost: 1.0,
        }
    }
}

/// Expands a [`DemandTrace`] into individual [`QueryArrival`]s.
///
/// Demand in each second is split across families by Zipf rank (the order of
/// the `families` slice defines the ranks), each family's per-second count is
/// drawn from a Poisson distribution, and arrivals are placed uniformly at
/// random within the second — the standard construction of a Poisson process
/// conditioned on its count, and exactly how §6.1.3 fills in sub-second
/// arrival times.
///
/// # Examples
///
/// ```
/// use proteus_profiler::ModelFamily;
/// use proteus_workloads::{FlatTrace, TraceBuilder};
///
/// let builder = TraceBuilder::new(vec![ModelFamily::ResNet, ModelFamily::Bert]);
/// let arrivals = builder.build(&FlatTrace { qps: 100.0, secs: 10 });
/// assert!((arrivals.len() as f64 - 1000.0).abs() < 200.0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    families: Vec<ModelFamily>,
    zipf: Zipf,
    seed: u64,
    /// §7 extension: Gamma shape for NLP input costs (`None` = all inputs
    /// nominal). Costs are drawn from `Gamma(shape, 1/shape)` (mean 1), so
    /// smaller shapes mean wider input-size spread.
    input_cost_shape: Option<f64>,
}

impl TraceBuilder {
    /// Creates a builder with the paper's Zipf α = 1.001 and seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `families` is empty.
    pub fn new(families: Vec<ModelFamily>) -> Self {
        assert!(!families.is_empty(), "need at least one family");
        let zipf = Zipf::new(families.len(), 1.001);
        Self {
            families,
            zipf,
            seed: 0,
            input_cost_shape: None,
        }
    }

    /// The canonical popularity ranking used by the experiments: fast
    /// families are popular, heavyweight NLP models are rare (GPT-2 least,
    /// matching §6.7's observations).
    pub fn paper_families() -> Vec<ModelFamily> {
        vec![
            ModelFamily::EfficientNet,
            ModelFamily::ResNet,
            ModelFamily::Bert,
            ModelFamily::MobileNet,
            ModelFamily::DenseNet,
            ModelFamily::YoloV5,
            ModelFamily::ResNest,
            ModelFamily::T5,
            ModelFamily::Gpt2,
        ]
    }

    /// Overrides the Zipf exponent.
    pub fn zipf_alpha(mut self, alpha: f64) -> Self {
        self.zipf = Zipf::new(self.families.len(), alpha);
        self
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables variable input sizes for transformer families (§7): costs
    /// drawn from `Gamma(shape, 1/shape)` (mean 1). Vision queries stay at
    /// cost 1.0 (fixed-size images).
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not strictly positive.
    pub fn variable_input_sizes(mut self, shape: f64) -> Self {
        assert!(shape > 0.0, "input-cost shape must be positive");
        self.input_cost_shape = Some(shape);
        self
    }

    /// The families in rank order.
    pub fn families(&self) -> &[ModelFamily] {
        &self.families
    }

    /// The long-run fraction of queries belonging to `family`, or 0 if the
    /// family is not part of this workload.
    pub fn family_share(&self, family: ModelFamily) -> f64 {
        self.families
            .iter()
            .position(|&f| f == family)
            .map_or(0.0, |i| self.zipf.mass(i + 1))
    }

    /// Expected demand of `family` during `second` of `trace`, in QPS.
    pub fn family_qps_at(&self, trace: &dyn DemandTrace, second: u32, family: ModelFamily) -> f64 {
        trace.qps_at(second) * self.family_share(family)
    }

    /// Generates the full arrival stream, sorted by time.
    pub fn build(&self, trace: &dyn DemandTrace) -> Vec<QueryArrival> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut arrivals = Vec::new();
        for second in 0..trace.duration_secs() {
            let total = trace.qps_at(second);
            for (i, &family) in self.families.iter().enumerate() {
                let lambda = total * self.zipf.mass(i + 1);
                let count = dist::poisson_count(&mut rng, lambda);
                for _ in 0..count {
                    let offset: f64 = rng.random();
                    let cost = match self.input_cost_shape {
                        Some(shape) if family.is_transformer() => {
                            // Clamp to keep one query's cost below the
                            // profile-level batch budget.
                            dist::gamma(&mut rng, shape, 1.0 / shape).clamp(0.1, 8.0)
                        }
                        _ => 1.0,
                    };
                    arrivals.push(QueryArrival {
                        at: SimTime::from_secs_f64(second as f64 + offset),
                        family,
                        cost,
                    });
                }
            }
        }
        arrivals.sort_by_key(|a| a.at);
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_trace_is_flat() {
        let t = FlatTrace {
            qps: 50.0,
            secs: 30,
        };
        assert_eq!(t.duration_secs(), 30);
        assert_eq!(t.qps_at(0), 50.0);
        assert_eq!(t.qps_at(29), 50.0);
        assert_eq!(t.peak_qps(), 50.0);
    }

    #[test]
    fn diurnal_trace_has_peaks_and_troughs() {
        let t = DiurnalTrace::new(1440, 200.0, 1000.0, 2, 0.0, 0.0, 1.0, 1);
        // Troughs at the ends, peaks at 1/4 and 3/4 of the duration.
        assert!(t.qps_at(0) < 250.0);
        assert!(t.qps_at(360) > 900.0);
        assert!(t.qps_at(720) < 250.0);
        assert!(t.qps_at(1080) > 900.0);
        assert!(t.qps_at(1439) < 250.0);
    }

    #[test]
    fn diurnal_out_of_range_is_zero() {
        let t = DiurnalTrace::paper_like(60, 100.0, 200.0, 0);
        assert_eq!(t.qps_at(61), 0.0);
    }

    #[test]
    fn diurnal_is_deterministic() {
        let a = DiurnalTrace::paper_like(600, 200.0, 1000.0, 42);
        let b = DiurnalTrace::paper_like(600, 200.0, 1000.0, 42);
        for s in 0..600 {
            assert_eq!(a.qps_at(s), b.qps_at(s));
        }
    }

    #[test]
    fn bursty_trace_plateau() {
        let t = BurstyTrace::paper_like(150.0, 900.0);
        assert_eq!(t.qps_at(0), 150.0);
        assert_eq!(t.qps_at(t.burst_start), 900.0);
        assert_eq!(t.qps_at(t.burst_end - 1), 900.0);
        assert_eq!(t.qps_at(t.burst_end), 150.0);
        assert_eq!(t.peak_qps(), 900.0);
    }

    #[test]
    fn builder_hits_aggregate_rate() {
        let builder = TraceBuilder::new(TraceBuilder::paper_families()).seed(3);
        let trace = FlatTrace {
            qps: 500.0,
            secs: 60,
        };
        let arrivals = builder.build(&trace);
        let rate = arrivals.len() as f64 / 60.0;
        assert!((rate - 500.0).abs() < 20.0, "rate {rate}");
    }

    #[test]
    fn builder_respects_zipf_shares() {
        let families = TraceBuilder::paper_families();
        let builder = TraceBuilder::new(families.clone()).seed(5);
        let trace = FlatTrace {
            qps: 2000.0,
            secs: 60,
        };
        let arrivals = builder.build(&trace);
        let total = arrivals.len() as f64;
        for &family in &families {
            let observed = arrivals.iter().filter(|a| a.family == family).count() as f64 / total;
            let expected = builder.family_share(family);
            assert!(
                (observed - expected).abs() < 0.02,
                "{family}: observed {observed} expected {expected}"
            );
        }
        // Rank 1 (EfficientNet) dominates; GPT-2 is rarest.
        assert!(
            builder.family_share(ModelFamily::EfficientNet)
                > builder.family_share(ModelFamily::Gpt2)
        );
    }

    #[test]
    fn family_share_of_absent_family_is_zero() {
        let builder = TraceBuilder::new(vec![ModelFamily::ResNet]);
        assert_eq!(builder.family_share(ModelFamily::Gpt2), 0.0);
        assert_eq!(builder.family_share(ModelFamily::ResNet), 1.0);
    }

    #[test]
    fn arrivals_are_sorted_and_within_trace() {
        let builder = TraceBuilder::new(TraceBuilder::paper_families());
        let trace = FlatTrace {
            qps: 300.0,
            secs: 10,
        };
        let arrivals = builder.build(&trace);
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let end = SimTime::from_secs(10);
        assert!(arrivals.iter().all(|a| a.at < end));
    }

    #[test]
    fn variable_input_sizes_only_affect_transformers() {
        let builder = TraceBuilder::new(TraceBuilder::paper_families())
            .seed(6)
            .variable_input_sizes(1.5);
        let arrivals = builder.build(&FlatTrace {
            qps: 600.0,
            secs: 20,
        });
        let (mut nlp_costs, mut vision_costs) = (Vec::new(), Vec::new());
        for a in &arrivals {
            if a.family.is_transformer() {
                nlp_costs.push(a.cost);
            } else {
                vision_costs.push(a.cost);
            }
        }
        assert!(vision_costs.iter().all(|&c| c == 1.0));
        let mean: f64 = nlp_costs.iter().sum::<f64>() / nlp_costs.len() as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean NLP cost {mean}");
        assert!(nlp_costs.iter().any(|&c| c > 2.0), "long inputs must occur");
        assert!(nlp_costs.iter().all(|&c| (0.1..=8.0).contains(&c)));
        // Without the option every cost is nominal.
        let plain = TraceBuilder::new(TraceBuilder::paper_families())
            .seed(6)
            .build(&FlatTrace {
                qps: 100.0,
                secs: 5,
            });
        assert!(plain.iter().all(|a| a.cost == 1.0));
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_input_shape_rejected() {
        let _ = TraceBuilder::new(TraceBuilder::paper_families()).variable_input_sizes(0.0);
    }

    #[test]
    fn builder_is_deterministic() {
        let mk = || {
            TraceBuilder::new(TraceBuilder::paper_families())
                .seed(9)
                .build(&FlatTrace {
                    qps: 100.0,
                    secs: 5,
                })
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "at least one family")]
    fn empty_families_rejected() {
        TraceBuilder::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "base")]
    fn diurnal_rejects_peak_below_base() {
        DiurnalTrace::new(10, 100.0, 50.0, 1, 0.0, 0.0, 1.0, 0);
    }
}
