//! Arrival processes, distribution samplers and workload trace generators.
//!
//! The Proteus paper drives its evaluation with two kinds of workloads
//! (§6.1.3):
//!
//! * a **real-world Twitter trace** — per-second aggregate demand with
//!   diurnal patterns and spikes, sped up by a constant factor, split across
//!   model families by a Zipf(α = 1.001) distribution, with Poisson
//!   inter-arrivals inside each second; and
//! * **synthetic traces** — macro-scale bursty demand (Fig. 5) and
//!   micro-scale bursty inter-arrivals drawn from uniform / Poisson /
//!   Gamma(shape 0.05) processes (Fig. 6).
//!
//! The Twitter trace is not redistributable, so [`DiurnalTrace`] synthesizes
//! a demand curve with the same statistical properties the paper relies on
//! (diurnality, spikes, Poisson intra-second arrivals, Zipf family split);
//! everything is deterministic given a seed.
//!
//! The distribution samplers ([`dist`]) are implemented from scratch on top
//! of `rand`'s uniform source — Box–Muller for normals, Marsaglia–Tsang for
//! Gamma — so the workspace needs no extra dependencies.
//!
//! # Examples
//!
//! ```
//! use proteus_workloads::{ArrivalKind, ArrivalProcess};
//!
//! // 100 QPS of heavily bursty arrivals (Fig. 6's Gamma trace).
//! let mut arrivals = ArrivalProcess::new(ArrivalKind::Gamma { shape: 0.05 }, 100.0, 42);
//! let times = arrivals.take_for_secs(10.0);
//! let mean_gap = 10.0 / times.len() as f64;
//! assert!((mean_gap - 0.01).abs() < 0.005);
//! ```

#![forbid(unsafe_code)]

pub mod dist;
pub mod io;

mod arrivals;
mod trace;

pub use arrivals::{ArrivalKind, ArrivalProcess};
pub use trace::{BurstyTrace, DemandTrace, DiurnalTrace, FlatTrace, QueryArrival, TraceBuilder};
