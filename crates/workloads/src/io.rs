//! Trace import/export.
//!
//! The paper's artifact publishes its workload traces alongside the
//! simulator; this module provides the equivalent interchange format so
//! users can replay recorded production traces (or the actual Twitter
//! trace, if they have it) instead of the synthetic generators:
//!
//! * **Arrival streams** — CSV with `time_secs,family` rows, one query per
//!   line ([`arrivals_to_csv`] / [`arrivals_from_csv`]).
//! * **Demand curves** — CSV with `second,qps` rows, one bucket per line
//!   ([`RecordedTrace`]), implementing [`DemandTrace`] so a recorded curve
//!   plugs straight into [`TraceBuilder`](crate::TraceBuilder).

use std::fmt;

use proteus_profiler::ModelFamily;
use proteus_sim::SimTime;

use crate::{DemandTrace, QueryArrival};

/// A failure while parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes an arrival stream as `time_secs,family,cost` CSV (with
/// header).
///
/// # Examples
///
/// ```
/// use proteus_profiler::ModelFamily;
/// use proteus_sim::SimTime;
/// use proteus_workloads::io::{arrivals_from_csv, arrivals_to_csv};
/// use proteus_workloads::QueryArrival;
///
/// let arrivals = vec![QueryArrival::new(SimTime::from_millis(1500), ModelFamily::Bert)];
/// let csv = arrivals_to_csv(&arrivals);
/// assert_eq!(arrivals_from_csv(&csv).unwrap(), arrivals);
/// ```
pub fn arrivals_to_csv(arrivals: &[QueryArrival]) -> String {
    let mut out = String::from("time_secs,family,cost\n");
    for a in arrivals {
        out.push_str(&format!(
            "{:.9},{},{:.6}\n",
            a.at.as_secs_f64(),
            a.family.label(),
            a.cost
        ));
    }
    out
}

/// Parses an arrival stream written by [`arrivals_to_csv`] (or by any other
/// tool emitting the same columns; the `cost` column is optional and
/// defaults to 1.0). Arrivals are sorted by time on the way in, so
/// unordered logs are accepted.
///
/// # Errors
///
/// Returns the first malformed line (wrong column count, negative or
/// non-numeric time, unknown family, non-positive cost).
pub fn arrivals_from_csv(text: &str) -> Result<Vec<QueryArrival>, ParseTraceError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.trim();
        if content.is_empty() || (line == 1 && content.starts_with("time_secs")) {
            continue;
        }
        let bad = |reason: String| ParseTraceError { line, reason };
        let mut cols = content.split(',');
        let (Some(t), Some(fam), cost_col, None) =
            (cols.next(), cols.next(), cols.next(), cols.next())
        else {
            return Err(bad("expected `time_secs,family[,cost]`".into()));
        };
        let secs: f64 = t
            .trim()
            .parse()
            .map_err(|_| bad(format!("`{t}` is not a number")))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(bad(format!("time {secs} must be finite and non-negative")));
        }
        let family: ModelFamily = fam.trim().parse().map_err(|e| bad(format!("{e}")))?;
        let cost = match cost_col {
            None => 1.0,
            Some(c) => {
                let cost: f64 = c
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("`{c}` is not a cost")))?;
                if !cost.is_finite() || cost <= 0.0 {
                    return Err(bad(format!("cost {cost} must be positive and finite")));
                }
                cost
            }
        };
        out.push(QueryArrival {
            at: SimTime::from_secs_f64(secs),
            family,
            cost,
        });
    }
    out.sort_by_key(|a| a.at);
    Ok(out)
}

/// A per-second demand curve recorded from production (or exported from a
/// generator), usable anywhere a [`DemandTrace`] is.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    per_second: Vec<f64>,
}

impl RecordedTrace {
    /// Wraps an in-memory per-second series.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or non-finite.
    pub fn from_series(per_second: Vec<f64>) -> Self {
        for (i, &q) in per_second.iter().enumerate() {
            assert!(
                q.is_finite() && q >= 0.0,
                "second {i}: rate {q} must be finite and non-negative"
            );
        }
        Self { per_second }
    }

    /// Captures another trace's curve (e.g. to export a generated diurnal
    /// trace for later replay).
    pub fn capture(trace: &dyn DemandTrace) -> Self {
        Self {
            per_second: (0..trace.duration_secs())
                .map(|s| trace.qps_at(s))
                .collect(),
        }
    }

    /// Compresses the trace in time by an integer factor, as §6.1.3 does to
    /// the month-long Twitter trace: `factor` original seconds collapse
    /// into one, so instantaneous rates scale by `factor` while the demand
    /// *shape* is preserved. Used to overload a system with a trace that
    /// was recorded against much larger capacity.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn sped_up(&self, factor: u32) -> Self {
        assert!(factor > 0, "speed-up factor must be at least 1");
        let per_second = self
            .per_second
            .chunks(factor as usize)
            .map(|w| w.iter().sum())
            .collect();
        Self { per_second }
    }

    /// Serializes as `second,qps` CSV with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("second,qps\n");
        for (s, q) in self.per_second.iter().enumerate() {
            out.push_str(&format!("{s},{q:.6}\n"));
        }
        out
    }

    /// Parses `second,qps` CSV. Seconds must be dense and ascending from 0.
    ///
    /// # Errors
    ///
    /// Returns the first malformed or out-of-order line.
    pub fn from_csv(text: &str) -> Result<Self, ParseTraceError> {
        let mut per_second = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.trim();
            if content.is_empty() || (line == 1 && content.starts_with("second")) {
                continue;
            }
            let bad = |reason: String| ParseTraceError { line, reason };
            let mut cols = content.split(',');
            let (Some(s), Some(q), None) = (cols.next(), cols.next(), cols.next()) else {
                return Err(bad("expected exactly `second,qps`".into()));
            };
            let second: usize = s
                .trim()
                .parse()
                .map_err(|_| bad(format!("`{s}` is not a second index")))?;
            if second != per_second.len() {
                return Err(bad(format!(
                    "seconds must be dense and ascending: expected {}, got {second}",
                    per_second.len()
                )));
            }
            let qps: f64 = q
                .trim()
                .parse()
                .map_err(|_| bad(format!("`{q}` is not a rate")))?;
            if !qps.is_finite() || qps < 0.0 {
                return Err(bad(format!("rate {qps} must be finite and non-negative")));
            }
            per_second.push(qps);
        }
        Ok(Self { per_second })
    }
}

impl DemandTrace for RecordedTrace {
    fn qps_at(&self, second: u32) -> f64 {
        self.per_second.get(second as usize).copied().unwrap_or(0.0)
    }

    fn duration_secs(&self) -> u32 {
        self.per_second.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiurnalTrace, TraceBuilder};

    #[test]
    fn arrivals_round_trip() {
        let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
            .seed(3)
            .build(&crate::FlatTrace { qps: 50.0, secs: 4 });
        let csv = arrivals_to_csv(&arrivals);
        let parsed = arrivals_from_csv(&csv).unwrap();
        assert_eq!(parsed, arrivals);
    }

    #[test]
    fn arrivals_accept_unordered_and_legacy_two_column_input() {
        let csv = "time_secs,family\n2.0,BERT\n1.0,ResNet\n";
        let parsed = arrivals_from_csv(csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].at < parsed[1].at);
        assert_eq!(parsed[0].family, ModelFamily::ResNet);
        assert_eq!(parsed[0].cost, 1.0, "missing cost column defaults to 1");
        // Explicit cost column round-trips too.
        let parsed = arrivals_from_csv("0.5,BERT,2.25\n").unwrap();
        assert_eq!(parsed[0].cost, 2.25);
    }

    #[test]
    fn arrivals_report_bad_lines() {
        let err = arrivals_from_csv("time_secs,family\nabc,BERT\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("not a number"));
        let err = arrivals_from_csv("1.0,SqueezeNet\n").unwrap_err();
        assert!(err.reason.contains("SqueezeNet"));
        let err = arrivals_from_csv("1.0\n").unwrap_err();
        assert!(err.reason.contains("time_secs,family"));
        let err = arrivals_from_csv("-1.0,BERT\n").unwrap_err();
        assert!(err.reason.contains("non-negative"));
        let err = arrivals_from_csv("1.0,BERT,0.0\n").unwrap_err();
        assert!(err.reason.contains("positive"));
        let err = arrivals_from_csv("1.0,BERT,1.0,extra\n").unwrap_err();
        assert!(err.reason.contains("time_secs,family"));
    }

    #[test]
    fn recorded_trace_round_trips() {
        let original = DiurnalTrace::paper_like(120, 50.0, 300.0, 9);
        let recorded = RecordedTrace::capture(&original);
        let csv = recorded.to_csv();
        let parsed = RecordedTrace::from_csv(&csv).unwrap();
        assert_eq!(parsed.duration_secs(), 120);
        for s in 0..120 {
            assert!((parsed.qps_at(s) - original.qps_at(s)).abs() < 1e-5);
        }
    }

    #[test]
    fn recorded_trace_feeds_the_builder() {
        let recorded = RecordedTrace::from_series(vec![100.0; 10]);
        let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
            .seed(1)
            .build(&recorded);
        let rate = arrivals.len() as f64 / 10.0;
        assert!((rate - 100.0).abs() < 25.0);
    }

    #[test]
    fn recorded_trace_rejects_sparse_seconds() {
        let err = RecordedTrace::from_csv("second,qps\n0,10\n2,10\n").unwrap_err();
        assert!(err.reason.contains("dense"));
        let err = RecordedTrace::from_csv("0,-3\n").unwrap_err();
        assert!(err.reason.contains("non-negative"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_series_rejects_negative() {
        RecordedTrace::from_series(vec![5.0, -1.0]);
    }
}
