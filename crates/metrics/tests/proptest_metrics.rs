//! Property-based tests of metric aggregation: conservation, bucket
//! re-aggregation and summary consistency under random event streams.

use proptest::prelude::*;
use proteus_metrics::{MetricsCollector, RunSummary};
use proteus_profiler::ModelFamily;
use proteus_sim::SimTime;

#[derive(Debug, Clone)]
enum Ev {
    Arrive(u64, usize),
    Serve(u64, usize, f64, bool),
    Drop(u64, usize),
}

fn event_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u64..30_000, 0usize..9).prop_map(|(t, f)| Ev::Arrive(t, f)),
        (0u64..30_000, 0usize..9, 0.8f64..1.0, any::<bool>())
            .prop_map(|(t, f, a, on)| Ev::Serve(t, f, a, on)),
        (0u64..30_000, 0usize..9).prop_map(|(t, f)| Ev::Drop(t, f)),
    ]
}

fn replay(events: &[Ev], interval: SimTime) -> MetricsCollector {
    let mut m = MetricsCollector::new(interval);
    for e in events {
        match *e {
            Ev::Arrive(t, f) => {
                m.record_arrival(SimTime::from_millis(t), ModelFamily::from_index(f))
            }
            Ev::Serve(t, f, a, on) => {
                m.record_served(SimTime::from_millis(t), ModelFamily::from_index(f), a, on)
            }
            Ev::Drop(t, f) => m.record_dropped(SimTime::from_millis(t), ModelFamily::from_index(f)),
        }
    }
    m
}

proptest! {
    /// Totals are conserved: the summary equals the sum over buckets equals
    /// the sum over family summaries.
    #[test]
    fn totals_are_conserved(events in prop::collection::vec(event_strategy(), 0..300)) {
        let m = replay(&events, SimTime::from_secs(1));
        let s = m.summary();
        let arrivals = events.iter().filter(|e| matches!(e, Ev::Arrive(..))).count() as u64;
        let serves = events.iter().filter(|e| matches!(e, Ev::Serve(..))).count() as u64;
        let drops = events.iter().filter(|e| matches!(e, Ev::Drop(..))).count() as u64;
        prop_assert_eq!(s.total_arrived, arrivals);
        prop_assert_eq!(s.total_served, serves);
        prop_assert_eq!(s.total_dropped, drops);
        let by_family: u64 = m.family_summaries().iter().map(|f| f.summary.total_arrived).sum();
        prop_assert_eq!(by_family, arrivals);
        let by_bucket: u64 = m.timeseries().iter().map(|b| b.arrived).sum();
        prop_assert_eq!(by_bucket, arrivals);
    }

    /// Violation ratio is dropped+late over arrived, bounded by the events.
    #[test]
    fn violation_ratio_matches_definition(events in prop::collection::vec(event_strategy(), 1..300)) {
        let m = replay(&events, SimTime::from_secs(1));
        let s = m.summary();
        let late = events
            .iter()
            .filter(|e| matches!(e, Ev::Serve(_, _, _, false)))
            .count() as u64;
        let drops = events.iter().filter(|e| matches!(e, Ev::Drop(..))).count() as u64;
        prop_assert_eq!(s.total_violations, late + drops);
        if s.total_arrived > 0 {
            let expect = (late + drops) as f64 / s.total_arrived as f64;
            prop_assert!((s.slo_violation_ratio - expect).abs() < 1e-12);
        }
    }

    /// Whole-run aggregates are invariant to the bucket width (only the
    /// time-resolved statistics depend on it).
    #[test]
    fn totals_invariant_to_bucket_width(
        events in prop::collection::vec(event_strategy(), 1..200),
        width_ms in 100u64..5000,
    ) {
        let a = replay(&events, SimTime::from_secs(1)).summary();
        let b = replay(&events, SimTime::from_millis(width_ms)).summary();
        prop_assert_eq!(a.total_arrived, b.total_arrived);
        prop_assert_eq!(a.total_served, b.total_served);
        prop_assert_eq!(a.total_violations, b.total_violations);
        prop_assert!((a.effective_accuracy - b.effective_accuracy).abs() < 1e-12);
        prop_assert!((a.slo_violation_ratio - b.slo_violation_ratio).abs() < 1e-12);
    }

    /// `RunSummary::from_buckets` on the collector's own timeseries agrees
    /// with `summary()`.
    #[test]
    fn from_buckets_round_trips(events in prop::collection::vec(event_strategy(), 0..200)) {
        let m = replay(&events, SimTime::from_secs(1));
        let direct = m.summary();
        let via_buckets = RunSummary::from_buckets(&m.timeseries(), 1.0);
        prop_assert_eq!(direct, via_buckets);
    }

    /// Effective accuracy is always within the range of recorded accuracies.
    #[test]
    fn effective_accuracy_is_bounded(events in prop::collection::vec(event_strategy(), 1..200)) {
        let m = replay(&events, SimTime::from_secs(1));
        let s = m.summary();
        if s.total_served > 0 {
            prop_assert!(s.effective_accuracy >= 0.8 - 1e-12);
            prop_assert!(s.effective_accuracy <= 1.0 + 1e-12);
            prop_assert!(s.max_accuracy_drop >= 0.0);
            prop_assert!(s.max_accuracy_drop <= 0.2 + 1e-9);
        } else {
            prop_assert_eq!(s.effective_accuracy, 0.0);
        }
    }
}
