//! Event ingestion and interval bucketing.

use proteus_profiler::ModelFamily;
use proteus_sim::SimTime;

/// Counters for one `(interval, family)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Bucket {
    /// Queries that arrived during the interval.
    pub arrived: u64,
    /// Queries whose response completed during the interval, within SLO.
    pub served_on_time: u64,
    /// Queries whose response completed during the interval but late.
    pub served_late: u64,
    /// Queries dropped (expired or shed) during the interval.
    pub dropped: u64,
    /// Sum of normalized accuracy over all served queries (on time or late).
    pub accuracy_sum: f64,
}

impl Bucket {
    /// All queries that produced a response this interval.
    pub fn served(&self) -> u64 {
        self.served_on_time + self.served_late
    }

    /// Dropped plus late — the paper counts both as SLO violations.
    pub fn violations(&self) -> u64 {
        self.dropped + self.served_late
    }

    /// Mean accuracy of served queries, or `None` if nothing was served.
    pub fn effective_accuracy(&self) -> Option<f64> {
        let served = self.served();
        (served > 0).then(|| self.accuracy_sum / served as f64)
    }

    fn merge(&mut self, other: &Bucket) {
        self.arrived += other.arrived;
        self.served_on_time += other.served_on_time;
        self.served_late += other.served_late;
        self.dropped += other.dropped;
        self.accuracy_sum += other.accuracy_sum;
    }
}

/// Ingests per-query events and buckets them by time interval and family.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    interval: SimTime,
    /// Dense rows, one per interval, each a family-indexed array. The
    /// simulation records millions of events; direct indexing here replaces
    /// a hash lookup per query event (see DESIGN.md, "Hot path").
    cells: Vec<[Bucket; ModelFamily::COUNT]>,
    latency: crate::LatencyHistogram,
    /// Family-indexed; a family with zero recorded latencies is reported
    /// as absent (matching the sparse-map behaviour this replaced).
    latency_by_family: Vec<crate::LatencyHistogram>,
    end: SimTime,
    /// Row cache: events arrive in near-sorted time order, so consecutive
    /// records almost always land in the same interval. Caching the current
    /// row's half-open nanosecond span skips a `u64` division per event.
    /// `cached_span.0 > cached_span.1` encodes "no row cached".
    cached_span: (u64, u64),
    cached_idx: usize,
}

impl MetricsCollector {
    /// Creates a collector with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimTime) -> Self {
        assert!(interval > SimTime::ZERO, "bucket interval must be positive");
        Self {
            interval,
            cells: Vec::new(),
            latency: crate::LatencyHistogram::new(),
            latency_by_family: (0..ModelFamily::COUNT)
                .map(|_| crate::LatencyHistogram::new())
                .collect(),
            end: SimTime::ZERO,
            cached_span: (1, 0),
            cached_idx: 0,
        }
    }

    /// The configured bucket width.
    pub fn interval(&self) -> SimTime {
        self.interval
    }

    fn bucket_index(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.interval.as_nanos()
    }

    fn cell(&mut self, at: SimTime, family: ModelFamily) -> &mut Bucket {
        self.end = self.end.max(at);
        let nanos = at.as_nanos();
        if nanos < self.cached_span.0 || nanos >= self.cached_span.1 {
            let idx = self.bucket_index(at) as usize;
            if idx >= self.cells.len() {
                self.cells
                    .resize_with(idx + 1, || [Bucket::default(); ModelFamily::COUNT]);
            }
            let width = self.interval.as_nanos();
            let start = idx as u64 * width;
            self.cached_span = (start, start + width);
            self.cached_idx = idx;
        }
        &mut self.cells[self.cached_idx][family.index()]
    }

    /// Records a query arrival.
    pub fn record_arrival(&mut self, at: SimTime, family: ModelFamily) {
        self.cell(at, family).arrived += 1;
    }

    /// Records a completed query: `accuracy` is the serving variant's
    /// normalized accuracy, `on_time` whether the response met its SLO.
    pub fn record_served(
        &mut self,
        at: SimTime,
        family: ModelFamily,
        accuracy: f64,
        on_time: bool,
    ) {
        let cell = self.cell(at, family);
        if on_time {
            cell.served_on_time += 1;
        } else {
            cell.served_late += 1;
        }
        cell.accuracy_sum += accuracy;
    }

    /// Like [`record_served`](Self::record_served), additionally recording
    /// the end-to-end response latency into the aggregate and per-family
    /// histograms.
    pub fn record_served_latency(
        &mut self,
        at: SimTime,
        family: ModelFamily,
        accuracy: f64,
        on_time: bool,
        latency: SimTime,
    ) {
        self.record_served(at, family, accuracy, on_time);
        self.latency.record(latency);
        self.latency_by_family[family.index()].record(latency);
    }

    /// The aggregate response-latency histogram (populated by
    /// [`record_served_latency`](Self::record_served_latency)).
    pub fn latency_histogram(&self) -> &crate::LatencyHistogram {
        &self.latency
    }

    /// Per-family response-latency histogram, if the family served any
    /// latency-recorded query.
    pub fn family_latency(&self, family: ModelFamily) -> Option<&crate::LatencyHistogram> {
        let hist = &self.latency_by_family[family.index()];
        (hist.count() > 0).then_some(hist)
    }

    /// Records a dropped query (expired in queue or shed by the system).
    pub fn record_dropped(&mut self, at: SimTime, family: ModelFamily) {
        self.cell(at, family).dropped += 1;
    }

    /// Number of whole buckets covered so far (index of the last touched
    /// bucket plus one; zero if nothing was recorded).
    pub fn num_buckets(&self) -> u64 {
        if self.cells.is_empty() {
            0
        } else {
            self.bucket_index(self.end) + 1
        }
    }

    /// The aggregate bucket for one interval (all families merged).
    pub fn bucket(&self, index: u64) -> Bucket {
        let mut out = Bucket::default();
        if let Some(row) = usize::try_from(index).ok().and_then(|i| self.cells.get(i)) {
            for b in row {
                out.merge(b);
            }
        }
        out
    }

    /// The bucket for one `(interval, family)` cell.
    pub fn family_bucket(&self, index: u64, family: ModelFamily) -> Bucket {
        usize::try_from(index)
            .ok()
            .and_then(|i| self.cells.get(i))
            .map(|row| row[family.index()])
            .unwrap_or_default()
    }

    /// Aggregate timeseries over all buckets, one entry per interval.
    pub fn timeseries(&self) -> Vec<Bucket> {
        (0..self.num_buckets()).map(|i| self.bucket(i)).collect()
    }

    /// Timeseries for one family.
    pub fn family_timeseries(&self, family: ModelFamily) -> Vec<Bucket> {
        (0..self.num_buckets())
            .map(|i| self.family_bucket(i, family))
            .collect()
    }

    /// Condenses the run into the paper's four headline metrics.
    pub fn summary(&self) -> crate::RunSummary {
        crate::RunSummary::from_collector(self)
    }

    /// Per-family summaries (Fig. 9 breakdown).
    pub fn family_summaries(&self) -> Vec<crate::FamilySummary> {
        ModelFamily::ALL
            .into_iter()
            .filter_map(|f| crate::FamilySummary::from_collector(self, f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn buckets_split_by_interval() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        m.record_arrival(t(100), ModelFamily::ResNet);
        m.record_arrival(t(900), ModelFamily::ResNet);
        m.record_arrival(t(1100), ModelFamily::ResNet);
        assert_eq!(m.num_buckets(), 2);
        assert_eq!(m.bucket(0).arrived, 2);
        assert_eq!(m.bucket(1).arrived, 1);
    }

    #[test]
    fn families_are_separated() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        m.record_served(t(10), ModelFamily::ResNet, 0.9, true);
        m.record_served(t(20), ModelFamily::Bert, 0.8, false);
        assert_eq!(m.family_bucket(0, ModelFamily::ResNet).served(), 1);
        assert_eq!(m.family_bucket(0, ModelFamily::Bert).served_late, 1);
        let agg = m.bucket(0);
        assert_eq!(agg.served(), 2);
        assert_eq!(agg.violations(), 1);
        assert!((agg.effective_accuracy().unwrap() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn dropped_counts_as_violation() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        m.record_dropped(t(10), ModelFamily::T5);
        let b = m.bucket(0);
        assert_eq!(b.violations(), 1);
        assert_eq!(b.served(), 0);
        assert_eq!(b.effective_accuracy(), None);
    }

    #[test]
    fn timeseries_has_dense_indices() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        m.record_arrival(t(500), ModelFamily::ResNet);
        m.record_arrival(t(3500), ModelFamily::ResNet);
        let ts = m.timeseries();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[0].arrived, 1);
        assert_eq!(ts[1].arrived, 0);
        assert_eq!(ts[3].arrived, 1);
    }

    #[test]
    fn latency_recording_feeds_histograms() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        m.record_served_latency(t(10), ModelFamily::ResNet, 0.9, true, t(25));
        m.record_served_latency(t(20), ModelFamily::Bert, 0.8, false, t(75));
        assert_eq!(m.latency_histogram().count(), 2);
        assert_eq!(m.family_latency(ModelFamily::ResNet).unwrap().count(), 1);
        assert!(m.family_latency(ModelFamily::T5).is_none());
        assert_eq!(m.latency_histogram().max(), t(75));
        // The bucket counters are updated too.
        assert_eq!(m.bucket(0).served(), 2);
        assert_eq!(m.bucket(0).served_late, 1);
    }

    #[test]
    fn empty_collector() {
        let m = MetricsCollector::new(SimTime::from_secs(1));
        assert_eq!(m.num_buckets(), 0);
        assert!(m.timeseries().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        MetricsCollector::new(SimTime::ZERO);
    }
}
