//! Run summaries: the paper's four headline metrics (§6.1.4).

use proteus_profiler::ModelFamily;
use proteus_sim::SimTime;

use crate::{Bucket, MetricsCollector};

/// Minimum served queries a bucket needs before its effective accuracy
/// contributes to the max-drop statistic; avoids declaring a 20 % "drop"
/// from a bucket that served three queries.
const MIN_SERVED_FOR_DROP: u64 = 10;

/// Whole-run metrics for one system under one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Total queries that arrived.
    pub total_arrived: u64,
    /// Total queries served (on time or late).
    pub total_served: u64,
    /// Total queries dropped.
    pub total_dropped: u64,
    /// Total SLO violations (dropped + served late).
    pub total_violations: u64,
    /// Mean served throughput in queries per second.
    pub avg_throughput_qps: f64,
    /// Mean normalized accuracy over all served queries, in `[0, 1]`.
    pub effective_accuracy: f64,
    /// Largest per-bucket dip of effective accuracy below 1.0 (the paper
    /// reports this as a percentage drop from 100 %).
    pub max_accuracy_drop: f64,
    /// `total_violations / total_arrived` (0 if nothing arrived).
    pub slo_violation_ratio: f64,
    /// Median served latency. `None` when built from buckets alone (the
    /// bucket series carries no latency distribution) or nothing served.
    pub latency_p50: Option<SimTime>,
    /// 95th-percentile served latency (same availability as `latency_p50`).
    pub latency_p95: Option<SimTime>,
    /// 99th-percentile served latency (same availability as `latency_p50`).
    pub latency_p99: Option<SimTime>,
}

impl RunSummary {
    /// Builds the summary from a collector, including latency percentiles
    /// from its histogram.
    pub fn from_collector(collector: &MetricsCollector) -> Self {
        let ts = collector.timeseries();
        let mut summary = Self::from_buckets(&ts, collector.interval().as_secs_f64());
        let h = collector.latency_histogram();
        summary.latency_p50 = h.percentile(0.50);
        summary.latency_p95 = h.percentile(0.95);
        summary.latency_p99 = h.percentile(0.99);
        summary
    }

    /// Builds the summary from a bucket series with the given bucket width.
    pub fn from_buckets(buckets: &[Bucket], interval_secs: f64) -> Self {
        let total_arrived: u64 = buckets.iter().map(|b| b.arrived).sum();
        let total_served: u64 = buckets.iter().map(Bucket::served).sum();
        let total_dropped: u64 = buckets.iter().map(|b| b.dropped).sum();
        let total_violations: u64 = buckets.iter().map(Bucket::violations).sum();
        let accuracy_sum: f64 = buckets.iter().map(|b| b.accuracy_sum).sum();

        let span_secs = buckets.len() as f64 * interval_secs;
        let avg_throughput_qps = if span_secs > 0.0 {
            total_served as f64 / span_secs
        } else {
            0.0
        };
        let effective_accuracy = if total_served > 0 {
            accuracy_sum / total_served as f64
        } else {
            0.0
        };
        let max_accuracy_drop = buckets
            .iter()
            .filter(|b| b.served() >= MIN_SERVED_FOR_DROP)
            .filter_map(Bucket::effective_accuracy)
            .map(|a| 1.0 - a)
            .fold(0.0, f64::max);
        let slo_violation_ratio = if total_arrived > 0 {
            total_violations as f64 / total_arrived as f64
        } else {
            0.0
        };
        Self {
            total_arrived,
            total_served,
            total_dropped,
            total_violations,
            avg_throughput_qps,
            effective_accuracy,
            max_accuracy_drop,
            slo_violation_ratio,
            latency_p50: None,
            latency_p95: None,
            latency_p99: None,
        }
    }

    /// Max accuracy drop as a percentage (the unit Fig. 4/7/8 report).
    pub fn max_accuracy_drop_pct(&self) -> f64 {
        self.max_accuracy_drop * 100.0
    }

    /// Effective accuracy as a percentage.
    pub fn effective_accuracy_pct(&self) -> f64 {
        self.effective_accuracy * 100.0
    }
}

/// [`RunSummary`] restricted to one model family (Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySummary {
    /// The family this summary covers.
    pub family: ModelFamily,
    /// The family-restricted run metrics.
    pub summary: RunSummary,
}

impl FamilySummary {
    /// Builds the family summary, or `None` if no query of the family was
    /// observed.
    pub fn from_collector(collector: &MetricsCollector, family: ModelFamily) -> Option<Self> {
        let ts = collector.family_timeseries(family);
        let mut summary = RunSummary::from_buckets(&ts, collector.interval().as_secs_f64());
        if let Some(h) = collector.family_latency(family) {
            summary.latency_p50 = h.percentile(0.50);
            summary.latency_p95 = h.percentile(0.95);
            summary.latency_p99 = h.percentile(0.99);
        }
        (summary.total_arrived > 0).then_some(Self { family, summary })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_sim::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn summary_of_simple_run() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        for i in 0..20 {
            m.record_arrival(t(i * 40), ModelFamily::ResNet);
            m.record_served(t(i * 40 + 10), ModelFamily::ResNet, 0.9, true);
        }
        m.record_arrival(t(900), ModelFamily::ResNet);
        m.record_dropped(t(950), ModelFamily::ResNet);
        let s = m.summary();
        assert_eq!(s.total_arrived, 21);
        assert_eq!(s.total_served, 20);
        assert_eq!(s.total_dropped, 1);
        assert_eq!(s.total_violations, 1);
        assert!((s.effective_accuracy - 0.9).abs() < 1e-12);
        assert!((s.slo_violation_ratio - 1.0 / 21.0).abs() < 1e-12);
        assert!((s.avg_throughput_qps - 20.0).abs() < 1e-9);
        assert!((s.max_accuracy_drop - 0.1).abs() < 1e-12);
        assert!((s.max_accuracy_drop_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn max_drop_takes_worst_bucket() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        // Bucket 0: accuracy 1.0; bucket 1: accuracy 0.8.
        for i in 0..10 {
            m.record_served(t(i * 10), ModelFamily::ResNet, 1.0, true);
            m.record_served(t(1000 + i * 10), ModelFamily::ResNet, 0.8, true);
        }
        let s = m.summary();
        assert!((s.max_accuracy_drop - 0.2).abs() < 1e-12);
        assert!((s.effective_accuracy - 0.9).abs() < 1e-12);
    }

    #[test]
    fn sparse_buckets_do_not_count_toward_drop() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        for i in 0..10 {
            m.record_served(t(i * 10), ModelFamily::ResNet, 1.0, true);
        }
        // A lone low-accuracy straggler in bucket 1: below the MIN_SERVED
        // threshold, so it must not register as a 30 % "drop".
        m.record_served(t(1500), ModelFamily::ResNet, 0.7, true);
        let s = m.summary();
        assert_eq!(s.max_accuracy_drop, 0.0);
    }

    #[test]
    fn late_service_counts_as_violation_but_still_serves() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        m.record_arrival(t(0), ModelFamily::Bert);
        m.record_served(t(100), ModelFamily::Bert, 0.95, false);
        let s = m.summary();
        assert_eq!(s.total_served, 1);
        assert_eq!(s.total_violations, 1);
        assert_eq!(s.total_dropped, 0);
        assert_eq!(s.slo_violation_ratio, 1.0);
    }

    #[test]
    fn family_summary_filters() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        m.record_arrival(t(0), ModelFamily::ResNet);
        m.record_served(t(5), ModelFamily::ResNet, 1.0, true);
        m.record_arrival(t(0), ModelFamily::Gpt2);
        m.record_dropped(t(5), ModelFamily::Gpt2);
        let fams = m.family_summaries();
        assert_eq!(fams.len(), 2);
        let gpt = fams.iter().find(|f| f.family == ModelFamily::Gpt2).unwrap();
        assert_eq!(gpt.summary.slo_violation_ratio, 1.0);
        let res = fams
            .iter()
            .find(|f| f.family == ModelFamily::ResNet)
            .unwrap();
        assert_eq!(res.summary.slo_violation_ratio, 0.0);
        assert!(FamilySummary::from_collector(&m, ModelFamily::T5).is_none());
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let mut m = MetricsCollector::new(SimTime::from_secs(1));
        for i in 1..=100u64 {
            m.record_arrival(t(0), ModelFamily::ResNet);
            m.record_served_latency(t(10), ModelFamily::ResNet, 1.0, true, t(i));
        }
        let s = m.summary();
        let (p50, p95, p99) = (
            s.latency_p50.unwrap(),
            s.latency_p95.unwrap(),
            s.latency_p99.unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        // The histogram buckets are ~9 % wide; allow generous slack.
        assert!(p50 >= t(40) && p50 <= t(65), "p50 {p50:?}");
        assert!(p99 >= t(90) && p99 <= t(115), "p99 {p99:?}");
        // Per-family percentiles surface through FamilySummary too.
        let fam = FamilySummary::from_collector(&m, ModelFamily::ResNet).unwrap();
        assert_eq!(fam.summary.latency_p99, s.latency_p99);
        // from_buckets alone has no latency distribution to draw from.
        let from_buckets = RunSummary::from_buckets(&m.timeseries(), 1.0);
        assert_eq!(from_buckets.latency_p50, None);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let m = MetricsCollector::new(SimTime::from_secs(1));
        let s = m.summary();
        assert_eq!(s.total_arrived, 0);
        assert_eq!(s.avg_throughput_qps, 0.0);
        assert_eq!(s.slo_violation_ratio, 0.0);
        assert_eq!(s.max_accuracy_drop, 0.0);
    }
}
