//! Plain-text table and CSV rendering for the experiment binaries.
//!
//! The per-figure binaries in `proteus-bench` print the same rows/series the
//! paper's figures plot; these helpers keep that output aligned and
//! machine-readable.
//!
//! # Examples
//!
//! ```
//! use proteus_metrics::report::TextTable;
//!
//! let mut table = TextTable::new(vec!["system", "violations"]);
//! table.row(vec!["Proteus".into(), "0.012".into()]);
//! let rendered = table.render();
//! assert!(rendered.contains("Proteus"));
//! assert!(rendered.lines().count() >= 3);
//! ```

use std::fmt::Write as _;

/// A fixed-column plain-text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, a header separator and a trailing
    /// newline.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim right-padding of the final column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (comma-separated, quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for table cells).
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Renders a fixed-width waterfall cell: the `[start, end)` fraction of
/// the row (both in `0.0..=1.0`) is filled, the rest blank. Used by
/// `trace-query critpath` to draw per-segment latency bars that line up
/// across rows.
///
/// Out-of-range fractions are clamped; an inverted range renders empty.
pub fn waterfall_bar(start: f64, end: f64, width: usize) -> String {
    let clamp = |f: f64| (f.clamp(0.0, 1.0) * width as f64).round() as usize;
    let (lo, hi) = (clamp(start), clamp(end).min(width));
    let mut out = String::with_capacity(width);
    for i in 0..width {
        // A nonempty range always shows at least one cell, so very short
        // segments stay visible.
        out.push(if i >= lo && (i < hi || (i == lo && end > start)) {
            '\u{2588}'
        } else {
            ' '
        });
    }
    out
}

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes and control characters). The machine-readable outputs of
/// the CLI binaries are hand-rolled, mirroring the dep-free trace format.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a compact ASCII sparkline of a series, for quick trace
/// inspection in terminal output.
///
/// Returns an empty string for an empty series.
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let max = series.iter().copied().fold(f64::NAN, f64::max);
    let min = series.iter().copied().fold(f64::NAN, f64::min);
    let span = (max - min).max(1e-12);
    series
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.50".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find("2.50").unwrap(), col);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fmt_f_controls_digits() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(2.0, 0), "2");
    }

    #[test]
    fn waterfall_bar_fills_the_requested_range() {
        let bar = waterfall_bar(0.25, 0.75, 8);
        assert_eq!(bar.chars().count(), 8);
        assert_eq!(bar, "  ████  ");
        // Zero-length ranges are empty; tiny nonzero ones show one cell.
        assert_eq!(waterfall_bar(0.5, 0.5, 8).trim(), "");
        assert_eq!(waterfall_bar(0.5, 0.5001, 8).trim(), "█");
        // Clamped out-of-range input does not panic.
        assert_eq!(waterfall_bar(-1.0, 2.0, 4), "████");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn sparkline_spans_levels() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        // A constant series does not panic (zero span).
        assert_eq!(sparkline(&[5.0, 5.0]).chars().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
