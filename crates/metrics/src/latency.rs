//! Response-latency distributions: log-bucketed histograms with percentile
//! queries.
//!
//! The paper reports SLO violation *ratios*; an operator of the real system
//! also wants the latency distribution behind them (p50/p99, and how close
//! the tail sits to the SLO). [`LatencyHistogram`] provides that with fixed
//! memory: logarithmic buckets spanning 10 µs to ~100 s at ~9 % relative
//! resolution.

use proteus_sim::SimTime;

/// Lowest representable latency (bucket 0 upper edge), in nanoseconds.
const FIRST_EDGE_NANOS: f64 = 10_000.0; // 10 µs
/// Geometric bucket growth factor (~9 % relative error).
const GROWTH: f64 = 1.09;
/// Number of buckets (last bucket is a catch-all overflow).
const BUCKETS: usize = 192;

/// A fixed-memory, log-bucketed latency histogram.
///
/// # Examples
///
/// ```
/// use proteus_metrics::LatencyHistogram;
/// use proteus_sim::SimTime;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [10, 20, 30, 40, 50] {
///     h.record(SimTime::from_millis(ms));
/// }
/// let p50 = h.percentile(0.5).unwrap();
/// assert!((p50.as_millis_f64() - 30.0).abs() < 5.0);
/// assert_eq!(h.count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: f64,
    max: SimTime,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_nanos: 0.0,
            max: SimTime::ZERO,
        }
    }

    /// The defining bucket formula. Only used to build [`Self::edges`]; the
    /// hot path binary-searches the precomputed edge table instead of paying
    /// `ln` twice per recorded sample.
    fn bucket_of_formula(nanos: u64) -> usize {
        let nanos = nanos as f64;
        if nanos <= FIRST_EDGE_NANOS {
            return 0;
        }
        let idx = ((nanos / FIRST_EDGE_NANOS).ln() / GROWTH.ln()).ceil() as usize;
        idx.min(BUCKETS - 1)
    }

    /// `edges()[k]` is the smallest nanosecond value that
    /// [`bucket_of_formula`](Self::bucket_of_formula) maps to a bucket
    /// `> k`. Each edge is found by binary search with the formula as the
    /// oracle, so the table lookup agrees with the formula on every input —
    /// including its float-rounding quirks — by construction (the formula is
    /// monotone in `nanos`).
    fn edges() -> &'static [u64; BUCKETS - 1] {
        static EDGES: std::sync::OnceLock<[u64; BUCKETS - 1]> = std::sync::OnceLock::new();
        EDGES.get_or_init(|| {
            let mut edges = [0u64; BUCKETS - 1];
            for (k, slot) in edges.iter_mut().enumerate() {
                let (mut lo, mut hi) = (0u64, u64::MAX);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if Self::bucket_of_formula(mid) > k {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                *slot = lo;
            }
            edges
        })
    }

    fn bucket_of(latency: SimTime) -> usize {
        let nanos = latency.as_nanos();
        Self::edges().partition_point(|&edge| edge <= nanos)
    }

    /// Upper edge of bucket `idx`.
    fn edge(idx: usize) -> SimTime {
        SimTime::from_nanos((FIRST_EDGE_NANOS * GROWTH.powi(idx as i32)) as u64)
    }

    /// Records one response latency.
    pub fn record(&mut self, latency: SimTime) {
        self.counts[Self::bucket_of(latency)] += 1;
        self.total += 1;
        self.sum_nanos += latency.as_nanos() as f64;
        self.max = self.max.max(latency);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency, or `None` when empty.
    pub fn mean(&self) -> Option<SimTime> {
        (self.total > 0).then(|| SimTime::from_nanos((self.sum_nanos / self.total as f64) as u64))
    }

    /// Largest recorded latency (exact, not bucketed).
    pub fn max(&self) -> SimTime {
        self.max
    }

    /// The latency at quantile `q ∈ [0, 1]` (bucket upper edge, ≤ 9 %
    /// relative overestimate), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<SimTime> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The last bucket is an unbounded catch-all: its nominal
                // edge is a *lower* bound for its contents, so reporting
                // it would under-state the tail. The exact max is the only
                // honest answer there.
                if idx == BUCKETS - 1 {
                    return Some(self.max);
                }
                return Some(Self::edge(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Fraction of samples at or below `threshold` (e.g. an SLO), in
    /// `[0, 1]`; `1.0` when empty.
    pub fn fraction_within(&self, threshold: SimTime) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let cut = Self::bucket_of(threshold);
        // Buckets strictly below `cut` are certainly within; the threshold
        // bucket is counted as within (edge ≥ threshold ≥ previous edge).
        let within: u64 = self.counts.iter().take(cut + 1).sum();
        within as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(0.99), None);
        assert_eq!(h.fraction_within(ms(1)), 1.0);
    }

    #[test]
    fn percentiles_are_order_consistent() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i * 100)); // 0.1ms..100ms
        }
        let p10 = h.percentile(0.10).unwrap();
        let p50 = h.percentile(0.50).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p10 <= p50 && p50 <= p99);
        // Within the ~9 % bucket resolution of the true values.
        assert!((p50.as_millis_f64() - 50.0).abs() / 50.0 < 0.12, "{p50}");
        assert!((p99.as_millis_f64() - 99.0).abs() / 99.0 < 0.12, "{p99}");
        assert!(h.percentile(1.0).unwrap() <= h.max());
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(ms(10));
        h.record(ms(20));
        h.record(ms(60));
        assert_eq!(h.mean().unwrap(), ms(30));
        assert_eq!(h.max(), ms(60));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn fraction_within_tracks_slo() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(ms(i));
        }
        let f = h.fraction_within(ms(50));
        assert!((f - 0.5).abs() < 0.1, "{f}");
        assert_eq!(h.fraction_within(ms(1000)), 1.0);
        assert!(h.fraction_within(SimTime::from_nanos(1)) < 0.05);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(ms(5));
        b.record(ms(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), ms(500));
        assert!(a.percentile(0.99).unwrap() >= ms(400));
    }

    #[test]
    fn tiny_and_huge_latencies_clamp_to_end_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_nanos(1));
        h.record(SimTime::from_secs(10_000));
        assert_eq!(h.count(), 2);
        assert!(h.percentile(0.01).unwrap() <= SimTime::from_micros(10));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut a = LatencyHistogram::new();
        for i in 1..=50u64 {
            a.record(ms(i));
        }
        let before_p99 = a.percentile(0.99);
        let before_mean = a.mean();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 50);
        assert_eq!(a.percentile(0.99), before_p99);
        assert_eq!(a.mean(), before_mean);

        // And merging INTO an empty one adopts the source exactly.
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), a.count());
        assert_eq!(empty.max(), a.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(empty.percentile(q), a.percentile(q), "q = {q}");
        }
    }

    #[test]
    fn single_sample_every_quantile_is_that_sample() {
        let mut h = LatencyHistogram::new();
        h.record(ms(37));
        // One sample: the bucket edge overestimate is clamped by `max`,
        // so every quantile is the sample itself, exactly.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(ms(37)), "q = {q}");
        }
        assert_eq!(h.mean(), Some(ms(37)));
        assert_eq!(h.max(), ms(37));
    }

    #[test]
    fn saturating_top_bucket_keeps_order_and_max() {
        // Everything lands in the catch-all overflow bucket; quantiles
        // must stay clamped to the true max, not the astronomical edge.
        let mut h = LatencyHistogram::new();
        for secs in [200u64, 5_000, 100_000] {
            h.record(SimTime::from_secs(secs));
        }
        assert_eq!(h.percentile(1.0), Some(SimTime::from_secs(100_000)));
        assert!(h.percentile(0.5).unwrap() <= h.max());
        // Merging two saturated histograms stays saturated and exact-max.
        let mut other = LatencyHistogram::new();
        other.record(SimTime::from_secs(999_999));
        h.merge(&other);
        assert_eq!(h.max(), SimTime::from_secs(999_999));
        assert_eq!(h.percentile(1.0), Some(SimTime::from_secs(999_999)));
    }

    #[test]
    fn merged_percentiles_match_recording_into_one() {
        use proptest::test_runner::TestRng;
        // Property: splitting a sample stream across two histograms and
        // merging is indistinguishable from recording into one — counts,
        // mean, max and every quantile.
        for case in 0..100u64 {
            let mut rng = TestRng::for_case("latency::merged_matches_single", case);
            let n = 1 + rng.next_below(500) as usize;
            let mut merged = LatencyHistogram::new();
            let mut part = LatencyHistogram::new();
            let mut single = LatencyHistogram::new();
            for i in 0..n {
                // Span 1 µs .. ~17 min, covering both end buckets.
                let nanos = 1_000 + rng.next_below(1_000_000_000_000);
                let sample = SimTime::from_nanos(nanos);
                single.record(sample);
                if i % 2 == 0 {
                    merged.record(sample);
                } else {
                    part.record(sample);
                }
            }
            merged.merge(&part);
            assert_eq!(merged.count(), single.count(), "case {case}");
            assert_eq!(merged.max(), single.max(), "case {case}");
            assert_eq!(merged.mean(), single.mean(), "case {case}");
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(
                    merged.percentile(q),
                    single.percentile(q),
                    "case {case} q {q}"
                );
            }
            let slo = SimTime::from_nanos(1_000 + rng.next_below(1_000_000_000));
            assert_eq!(
                merged.fraction_within(slo),
                single.fraction_within(slo),
                "case {case}"
            );
        }
    }

    #[test]
    fn edge_table_agrees_with_formula() {
        // The table lookup must reproduce the ln-based formula exactly,
        // especially at bucket boundaries. Sweep ±2 ns around every edge
        // plus a coarse pseudorandom scatter across the full range.
        for &edge in LatencyHistogram::edges() {
            for n in edge.saturating_sub(2)..=edge.saturating_add(2) {
                assert_eq!(
                    LatencyHistogram::bucket_of(SimTime::from_nanos(n)),
                    LatencyHistogram::bucket_of_formula(n),
                    "mismatch at {n} ns"
                );
            }
        }
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..10_000 {
            // xorshift* scatter; bias toward small values too.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            for n in [x, x % 1_000_000_000, x % 20_000] {
                assert_eq!(
                    LatencyHistogram::bucket_of(SimTime::from_nanos(n)),
                    LatencyHistogram::bucket_of_formula(n),
                    "mismatch at {n} ns"
                );
            }
        }
    }
}
