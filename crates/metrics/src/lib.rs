//! Measurement: per-interval timeseries, run summaries and report rendering.
//!
//! The paper evaluates every system with four metrics (§6.1.4):
//!
//! 1. **Throughput** — queries served per second;
//! 2. **Effective accuracy** — mean normalized accuracy over *served*
//!    queries;
//! 3. **Maximum accuracy drop** — the largest dip of effective accuracy
//!    below 100 % anywhere in the trace;
//! 4. **SLO violation ratio** — (dropped + late) / total queries.
//!
//! [`MetricsCollector`] ingests per-query events from the serving system and
//! buckets them into fixed intervals; [`RunSummary`] condenses a run into
//! the four headline metrics (plus per-family breakdowns for Fig. 9); the
//! [`report`] module renders plain-text tables and CSV for the experiment
//! binaries.
//!
//! # Examples
//!
//! ```
//! use proteus_metrics::MetricsCollector;
//! use proteus_profiler::ModelFamily;
//! use proteus_sim::SimTime;
//!
//! let mut m = MetricsCollector::new(SimTime::from_secs(1));
//! let t = SimTime::from_millis(300);
//! m.record_arrival(t, ModelFamily::ResNet);
//! m.record_served(t + SimTime::from_millis(40), ModelFamily::ResNet, 0.95, true);
//! let summary = m.summary();
//! assert_eq!(summary.total_arrived, 1);
//! assert!((summary.effective_accuracy - 0.95).abs() < 1e-12);
//! assert_eq!(summary.slo_violation_ratio, 0.0);
//! ```

#![forbid(unsafe_code)]

mod collector;
mod latency;
pub mod report;
mod summary;

pub use collector::{Bucket, MetricsCollector};
pub use latency::LatencyHistogram;
pub use summary::{FamilySummary, RunSummary};
