//! Microbenchmarks of the MILP solver over the three Fig. 10 scaling axes:
//! devices (d), model variants (m) and query types (q).
//!
//! Each axis is swept on the faithful per-device formulation (the one whose
//! cost grows fastest) plus one aggregated point at the paper-testbed
//! operating scale. The machine-readable companion is
//! `bench_solver_json` (`BENCH_solver.json`), which records the same
//! instances with solver statistics for cross-commit comparison; this
//! criterion harness adds statistical rigor (outlier detection, regression
//! tracking) on development machines where criterion is available.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proteus_core::allocation::milp::{solve_allocation, Formulation, MilpConfig};
use proteus_core::schedulers::AllocContext;
use proteus_core::FamilyMap;
use proteus_profiler::{Cluster, ModelFamily, ModelZoo, ProfileStore, SloPolicy, VariantSpec};

/// A zoo with only the first `per_family` variants of each of the first
/// `families` families (mirrors `fig10_milp_scaling`).
fn sub_zoo(families: usize, per_family: usize) -> ModelZoo {
    let full = ModelZoo::paper_table3();
    let mut zoo = ModelZoo::new();
    for &family in ModelFamily::ALL.iter().take(families) {
        for v in full.variants_of(family).take(per_family) {
            zoo.register(VariantSpec::new(
                v.id(),
                v.name(),
                v.accuracy(),
                v.reference_latency_ms(),
                v.memory_mib(),
                v.memory_per_item_mib(),
            ));
        }
    }
    zoo
}

fn demand_for(families: usize) -> FamilyMap<f64> {
    FamilyMap::from_fn(|f| {
        if f.index() < families {
            30.0 + 5.0 * f.index() as f64
        } else {
            0.0
        }
    })
}

fn per_device_config() -> MilpConfig {
    MilpConfig {
        formulation: Formulation::PerDevice,
        ..MilpConfig::default()
    }
}

fn solve(cluster: &Cluster, zoo: &ModelZoo, families: usize, config: &MilpConfig) {
    let store = ProfileStore::build(zoo, SloPolicy::default());
    let ctx = AllocContext {
        cluster,
        zoo,
        store: &store,
        down: &[],
    };
    let demand = demand_for(families);
    let _ = black_box(solve_allocation(&ctx, black_box(&demand), None, config));
}

fn axis_devices(c: &mut Criterion) {
    let zoo = sub_zoo(4, 4);
    let config = per_device_config();
    let mut group = c.benchmark_group("solver/devices");
    group.sample_size(10);
    for &d in &[6u32, 12, 20, 32, 48] {
        let cluster = Cluster::with_counts(d / 2, d / 4, d - d / 2 - d / 4);
        group.bench_with_input(BenchmarkId::from_parameter(d), &cluster, |b, cluster| {
            b.iter(|| solve(cluster, &zoo, 4, &config));
        });
    }
    group.finish();
}

fn axis_variants(c: &mut Criterion) {
    let cluster = Cluster::with_counts(6, 3, 3);
    let config = per_device_config();
    let mut group = c.benchmark_group("solver/variants");
    group.sample_size(10);
    for &per in &[1usize, 2, 3, 4, 5] {
        let zoo = sub_zoo(6, per);
        group.bench_with_input(BenchmarkId::from_parameter(zoo.len()), &zoo, |b, zoo| {
            b.iter(|| solve(&cluster, zoo, 6, &config));
        });
    }
    group.finish();
}

fn axis_query_types(c: &mut Criterion) {
    let cluster = Cluster::with_counts(6, 3, 3);
    let config = per_device_config();
    let mut group = c.benchmark_group("solver/query_types");
    group.sample_size(10);
    for &q in &[1usize, 3, 5, 7, 9] {
        let zoo = sub_zoo(q, 4);
        group.bench_with_input(BenchmarkId::from_parameter(q), &zoo, |b, zoo| {
            b.iter(|| solve(&cluster, zoo, q, &config));
        });
    }
    group.finish();
}

fn operating_point(c: &mut Criterion) {
    let zoo = ModelZoo::paper_table3();
    let cluster = Cluster::paper_testbed();
    let config = MilpConfig::default();
    let mut group = c.benchmark_group("solver/operating_point");
    group.sample_size(10);
    group.bench_function("aggregated_paper_testbed", |b| {
        b.iter(|| solve(&cluster, &zoo, 9, &config));
    });
    group.finish();
}

criterion_group!(
    benches,
    axis_devices,
    axis_variants,
    axis_query_types,
    operating_point
);
criterion_main!(benches);
