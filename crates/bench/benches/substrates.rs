//! Substrate micro-benchmarks: discrete-event engine throughput, trace
//! generation and profile-store lookups. Not part of the paper's figures;
//! used to confirm the simulator itself never bottlenecks an experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use proteus_profiler::{DeviceType, ModelFamily, ModelZoo, ProfileStore, SloPolicy};
use proteus_sim::{Actor, SimTime, Simulation};
use proteus_workloads::{DiurnalTrace, TraceBuilder};

struct Relay {
    left: u32,
}

impl Actor for Relay {
    type Event = u32;
    fn handle(&mut self, now: SimTime, event: u32, sim: &mut Simulation<u32>) {
        if self.left > 0 {
            self.left -= 1;
            sim.schedule(now + SimTime::from_micros(10), event + 1);
        }
    }
}

fn event_engine(c: &mut Criterion) {
    c.bench_function("sim_10k_chained_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.schedule(SimTime::ZERO, 0);
            let mut relay = Relay { left: 10_000 };
            sim.run(&mut relay);
            black_box(sim.delivered())
        })
    });
}

fn trace_generation(c: &mut Criterion) {
    let trace = DiurnalTrace::paper_like(60, 200.0, 1000.0, 42);
    c.bench_function("trace_60s_diurnal_zipf", |b| {
        b.iter(|| {
            let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
                .seed(42)
                .build(black_box(&trace));
            black_box(arrivals.len())
        })
    });
}

fn profile_lookup(c: &mut Criterion) {
    let zoo = ModelZoo::paper_table3();
    let store = ProfileStore::build(&zoo, SloPolicy::default());
    let ids: Vec<_> = zoo.iter().map(|v| v.id()).collect();
    let mut i = 0;
    c.bench_function("profile_store_lookup", |b| {
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(store.profile(ids[i], DeviceType::V100))
        })
    });
    c.bench_function("profile_store_build_full_zoo", |b| {
        b.iter(|| black_box(ProfileStore::build(&zoo, SloPolicy::default())))
    });
    let _ = ModelFamily::COUNT;
}

criterion_group!(benches, event_engine, trace_generation, profile_lookup);
criterion_main!(benches);
