//! §6.8 — decision overheads: request-router lookup, batching decision,
//! and the resource-management MILP at the paper testbed scale.
//!
//! The paper reports sub-millisecond router lookups and ~4.2 s average
//! Gurobi solves; here the same operations are measured over the Rust
//! implementation (the solver is our own branch & bound, so the absolute
//! MILP time differs, but it stays far off the query critical path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use proteus_core::allocation::milp::{solve_allocation, MilpConfig};
use proteus_core::batching::{BatchContext, BatchPolicy, ProteusBatching};
use proteus_core::router::Router;
use proteus_core::schedulers::AllocContext;
use proteus_core::{FamilyMap, Query, QueryId};
use proteus_profiler::{
    Cluster, DeviceId, DeviceType, ModelFamily, ModelZoo, ProfileStore, SloPolicy,
};
use proteus_sim::SimTime;

fn router_lookup(c: &mut Criterion) {
    // 40 hosting devices for one family: the worst realistic fan-out.
    let targets: Vec<(DeviceId, f64)> = (0..40)
        .map(|i| (DeviceId(i), 1.0 + (i % 7) as f64))
        .collect();
    let mut router = Router::new(ModelFamily::EfficientNet, targets);
    c.bench_function("router_route_40_targets", |b| {
        b.iter(|| black_box(router.route()))
    });
}

fn batching_decision(c: &mut Criterion) {
    let zoo = ModelZoo::paper_table3();
    let store = ProfileStore::build(&zoo, SloPolicy::default());
    let variant = zoo.least_accurate(ModelFamily::EfficientNet).unwrap().id();
    let profile = store.profile(variant, DeviceType::V100).unwrap();
    let slo = SimTime::from_millis_f64(store.slo_ms(ModelFamily::EfficientNet));
    let queue: Vec<Query> = (0..24)
        .map(|i| {
            Query::new(
                QueryId(i),
                ModelFamily::EfficientNet,
                SimTime::from_millis(i),
                slo,
            )
        })
        .collect();
    let mut policy = ProteusBatching;
    c.bench_function("proteus_batching_decide_24_queued", |b| {
        b.iter(|| {
            let ctx = BatchContext {
                now: SimTime::from_millis(5),
                queue: black_box(&queue),
                profile,
                lat_table: &[],
            };
            black_box(policy.decide(&ctx))
        })
    });
}

fn milp_solve(c: &mut Criterion) {
    let zoo = ModelZoo::paper_table3();
    let store = ProfileStore::build(&zoo, SloPolicy::default());
    let cluster = Cluster::paper_testbed();
    let ctx = AllocContext {
        cluster: &cluster,
        zoo: &zoo,
        store: &store,
        down: &[],
    };
    let demand = FamilyMap::from_fn(|f| 40.0 + 10.0 * f.index() as f64);
    let config = MilpConfig::default();
    let mut group = c.benchmark_group("milp");
    group.sample_size(10);
    group.bench_function("allocate_paper_testbed_9_families", |b| {
        b.iter(|| black_box(solve_allocation(&ctx, black_box(&demand), None, &config)))
    });
    group.finish();
}

criterion_group!(benches, router_lookup, batching_decision, milp_solve);
criterion_main!(benches);
