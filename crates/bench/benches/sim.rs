//! End-to-end serving-loop throughput: the full Proteus system (allocator,
//! router, batching, metrics, event queue) replaying a fig4-shaped diurnal
//! trace. This is the hot path DESIGN.md's "Hot path & performance" section
//! describes; the machine-readable companion is `bench_sim_json`
//! (`BENCH_sim.json`), which runs the million-query headline instance and
//! records the run fingerprint for cross-commit comparison. The criterion
//! harness here uses reduced traces so statistical sampling stays practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proteus_core::batching::ProteusBatching;
use proteus_core::schedulers::ProteusAllocator;
use proteus_core::system::{ServingSystem, SystemConfig};
use proteus_workloads::{DiurnalTrace, QueryArrival, TraceBuilder};

/// A fig4-shaped trace truncated to exactly `queries` arrivals (same
/// construction as `bench_sim_json`).
fn trace(queries: usize) -> Vec<QueryArrival> {
    let secs = ((queries as f64 / 550.0) * 1.25).ceil().max(60.0) as u32;
    let curve = DiurnalTrace::paper_like(secs, 200.0, 1000.0, 42);
    let mut arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(42)
        .build(&curve);
    assert!(arrivals.len() >= queries);
    arrivals.truncate(queries);
    arrivals
}

fn serving_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_loop");
    group.sample_size(10);
    for queries in [10_000usize, 60_000] {
        let arrivals = trace(queries);
        group.bench_with_input(
            BenchmarkId::new("fig4_diurnal", queries),
            &arrivals,
            |b, arrivals| {
                b.iter(|| {
                    let mut system = ServingSystem::new(
                        SystemConfig::paper_testbed(),
                        Box::new(ProteusAllocator::default()),
                        Box::new(ProteusBatching),
                    );
                    black_box(system.run(black_box(arrivals)))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, serving_loop);
criterion_main!(benches);
