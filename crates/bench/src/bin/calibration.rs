//! Calibration sweeps used to pick the experiment operating points:
//! `peaks` sweeps the diurnal peak demand across all five systems (Fig. 4
//! scale selection), `batching` sweeps the offered load of the batching
//! isolation experiment (Fig. 6), and `headroom` sweeps the planning
//! headroom beta with per-family/per-window violation breakdowns. Not part
//! of the paper reproduction itself, but kept so the chosen operating
//! points stay reproducible.

use proteus_bench::{paper_contenders, run_contender};
use proteus_core::batching::{BatchPolicy, NexusBatching, ProteusBatching};
use proteus_core::schedulers::ProteusAllocator;
use proteus_core::system::{ServingSystem, SystemConfig};
use proteus_core::FamilyMap;
use proteus_metrics::report::{fmt_f, TextTable};
use proteus_profiler::ModelFamily;
use proteus_workloads::{ArrivalKind, ArrivalProcess, DiurnalTrace, QueryArrival, TraceBuilder};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "peaks".into());
    match mode.as_str() {
        "peaks" => peaks(),
        "batching" => batching(),
        "headroom" => headroom(),
        other => eprintln!("unknown mode {other} (peaks|batching|headroom)"),
    }
}

fn peaks() {
    for peak in [1000.0, 1300.0, 1600.0] {
        let trace = DiurnalTrace::paper_like(8 * 60, peak / 5.0, peak, 42);
        let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
            .seed(42)
            .build(&trace);
        println!("== peak {peak} QPS ({} queries) ==", arrivals.len());
        let mut t = TextTable::new(vec!["system", "thr", "acc%", "drop%", "viol"]);
        for c in paper_contenders() {
            let s = run_contender(&c, SystemConfig::paper_testbed(), &arrivals)
                .metrics
                .summary();
            t.row(vec![
                c.name.into(),
                fmt_f(s.avg_throughput_qps, 0),
                fmt_f(s.effective_accuracy_pct(), 1),
                fmt_f(s.max_accuracy_drop_pct(), 1),
                fmt_f(s.slo_violation_ratio, 4),
            ]);
        }
        print!("{}", t.render());
    }
}

fn batching() {
    let policies: Vec<(&str, Box<dyn BatchPolicy>)> = vec![
        ("proteus", Box::new(ProteusBatching)),
        ("nexus", Box::new(NexusBatching)),
    ];
    for qps in [350.0, 450.0, 550.0, 600.0, 650.0] {
        print!("qps {qps}: ");
        for (name, p) in &policies {
            let mut config = SystemConfig::paper_testbed();
            config.realloc_period_secs = 1e9;
            config.burst_threshold = f64::INFINITY;
            let mut prov = FamilyMap::default();
            prov[ModelFamily::EfficientNet] = 600.0;
            config.provision_demand = Some(prov);
            let stream: Vec<QueryArrival> =
                ArrivalProcess::new(ArrivalKind::Gamma { shape: 0.05 }, qps, 77)
                    .take_for_secs(90.0)
                    .into_iter()
                    .map(|at| QueryArrival::new(at, ModelFamily::EfficientNet))
                    .collect();
            let mut system =
                ServingSystem::new(config, Box::new(ProteusAllocator::default()), p.clone());
            let s = system.run(&stream).metrics.summary();
            print!("{name}={:.4} ", s.slo_violation_ratio);
        }
        println!();
    }
}

fn headroom() {
    let trace = DiurnalTrace::paper_like(8 * 60, 260.0, 1300.0, 42);
    let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(42)
        .build(&trace);
    for (label, headroom, load_scale) in [
        ("beta=1.05", 1.05, 1.0),
        ("beta=1.15", 1.15, 1.0),
        ("beta=1.25", 1.25, 1.0),
        ("beta=1.15 fast-load", 1.15, 0.1),
        ("beta=1.05 fast-load", 1.05, 0.1),
    ] {
        let mut config = SystemConfig::paper_testbed();
        config.demand_headroom = headroom;
        config.load_base_secs *= load_scale;
        config.load_secs_per_gib *= load_scale;
        let mut system = ServingSystem::new(
            config,
            Box::new(ProteusAllocator::default()),
            Box::new(ProteusBatching),
        );
        let o = system.run(&arrivals);
        let s = o.metrics.summary();
        println!(
            "{label}: viol={:.4} drop={:.2}% acc={:.2}% reallocs={} shrunk={}",
            s.slo_violation_ratio,
            s.max_accuracy_drop_pct(),
            s.effective_accuracy_pct(),
            o.reallocations,
            o.shrunk_plans
        );
        if label.starts_with("beta=1.25") {
            for f in o.metrics.family_summaries() {
                println!(
                    "   {:<14} viol={:.4} arrived={}",
                    f.family.label(),
                    f.summary.slo_violation_ratio,
                    f.summary.total_arrived
                );
            }
            let per_min: Vec<f64> = o
                .metrics
                .timeseries()
                .chunks(30)
                .map(|c| c.iter().map(|b| b.violations() as f64).sum::<f64>() / 30.0)
                .collect();
            println!("   viol/s per 30s window: {per_min:.1?}");
        }
    }
}
