//! Fig. 4 — end-to-end comparison on the Twitter-like diurnal trace.
//!
//! For each of the five systems: demand/throughput timeseries, effective
//! accuracy, SLO violations, and the summary bars (average throughput, max
//! accuracy drop, violation ratio).

use proteus_bench::{
    demand_per_minute, paper_contenders, paper_trace, per_minute, run_contender, summary_headers,
    summary_row,
};
use proteus_core::system::SystemConfig;
use proteus_metrics::report::{fmt_f, sparkline, TextTable};

fn main() {
    let (trace, arrivals) = paper_trace(42);
    println!(
        "Fig. 4: end-to-end on the diurnal trace ({} queries, 24 min, peak ~1000 QPS)\n",
        arrivals.len()
    );

    let demand = demand_per_minute(&trace);
    println!("demand (QPS/min):     {}", sparkline(&demand));

    // Per-system minute series: (name, throughput, accuracy %, violations).
    type MinuteRow = (String, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut summary_table = TextTable::new(summary_headers());
    let mut minute_rows: Vec<MinuteRow> = Vec::new();

    for contender in paper_contenders() {
        let outcome = run_contender(&contender, SystemConfig::paper_testbed(), &arrivals);
        let ts = outcome.metrics.timeseries();
        let served: Vec<f64> = ts.iter().map(|b| b.served() as f64).collect();
        let acc: Vec<f64> = ts
            .iter()
            .map(|b| b.effective_accuracy().map_or(f64::NAN, |a| a * 100.0))
            .collect();
        let viol: Vec<f64> = ts.iter().map(|b| b.violations() as f64).collect();
        let s = outcome.metrics.summary();
        summary_table.row(summary_row(contender.name, &s));
        println!(
            "{:<16} throughput {}",
            contender.name,
            sparkline(&per_minute(&served))
        );
        minute_rows.push((
            contender.name.to_string(),
            per_minute(&served),
            per_minute(&acc),
            per_minute(&viol),
        ));
    }

    println!("\nSummary (the bar charts of Fig. 4):\n");
    print!("{}", summary_table.render());

    // Compact per-4-minute timeseries table for the three panels.
    for (title, idx) in [
        ("throughput (QPS)", 1usize),
        ("effective accuracy (%)", 2),
        ("SLO violations (/s)", 3),
    ] {
        println!("\n{title} by 4-minute window:");
        let mut t = TextTable::new(vec![
            "system", "0-4", "4-8", "8-12", "12-16", "16-20", "20-24",
        ]);
        for row in &minute_rows {
            let series = match idx {
                1 => &row.1,
                2 => &row.2,
                _ => &row.3,
            };
            let windows: Vec<String> = series
                .chunks(4)
                .map(|c| {
                    let vals: Vec<f64> = c.iter().copied().filter(|v| v.is_finite()).collect();
                    if vals.is_empty() {
                        "-".to_string()
                    } else {
                        fmt_f(vals.iter().sum::<f64>() / vals.len() as f64, 1)
                    }
                })
                .take(6)
                .collect();
            let mut cells = vec![row.0.clone()];
            cells.extend(windows);
            while cells.len() < 7 {
                cells.push("-".into());
            }
            t.row(cells);
        }
        print!("{}", t.render());
    }

    println!(
        "\nExpected shape (paper): Clipper-HA collapses at peaks with the most\n\
         violations; Clipper-HT tracks demand but drops ~20% accuracy always;\n\
         Sommelier scales accuracy but over-drops (static placement); INFaaS\n\
         scales with a greedy heuristic (moderate drop, elevated violations at\n\
         peaks); Proteus has the smallest max drop and fewest violations."
    );
}
