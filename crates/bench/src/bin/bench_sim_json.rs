//! Machine-readable end-to-end throughput benchmark of the serving-loop
//! hot path: replays a fig4-style diurnal trace (Proteus allocator +
//! Proteus batching, paper testbed) and writes `BENCH_sim.json` (or the
//! path given as the first argument).
//!
//! Like `bench_solver_json`, the JSON is written by hand so the harness
//! has no dependencies beyond the workspace crates: run the binary from
//! two commits and diff the `queries_per_sec` fields. Each instance also
//! records a run fingerprint (served/dropped/violations/accuracy) so a
//! speedup that changes answers is rejected rather than celebrated.
//!
//! Modes:
//!
//! * default — run the reduced and headline (1M-query) instances and
//!   write the baseline JSON;
//! * `--queries N` — override the headline instance's query count;
//! * `--check <baseline.json>` — CI perf smoke: run only the reduced
//!   instance and exit non-zero if its queries/sec regresses more than
//!   30 % against the committed baseline;
//! * `--telemetry` — run with the telemetry plane on (registry, sketches
//!   and burn-rate engine; no exposition file, dashboard or listener), to
//!   measure the observability overhead against a default run. The run
//!   fingerprint must not change — telemetry observes, never steers.

use std::fmt::Write as _;
use std::time::Instant;

use proteus_core::batching::ProteusBatching;
use proteus_core::schedulers::ProteusAllocator;
use proteus_core::system::{RunOutcome, ServingSystem, SystemConfig, TelemetryConfig};
use proteus_workloads::{DiurnalTrace, QueryArrival, TraceBuilder};

/// Best-of-N timing, as in `bench_solver_json`: enough to shave scheduler
/// noise off the floor without tripling a minutes-long sweep.
const REPEATS: u32 = 2;

/// Queries in the headline instance (the acceptance-criterion scale).
const HEADLINE_QUERIES: usize = 1_000_000;

/// Queries in the reduced instance the CI perf-smoke job runs.
const REDUCED_QUERIES: usize = 60_000;

/// Maximum tolerated queries/sec regression in `--check` mode.
const MAX_REGRESSION: f64 = 0.30;

/// A fig4-shaped arrival trace truncated to exactly `queries` arrivals.
///
/// The diurnal curve is sized generously and then cut, so the query count
/// is exact and independent of Poisson noise.
fn trace(queries: usize) -> Vec<QueryArrival> {
    // ~550 QPS mean for the paper-like 200->1000 curve; oversize by 25 %.
    let secs = ((queries as f64 / 550.0) * 1.25).ceil().max(60.0) as u32;
    let curve = DiurnalTrace::paper_like(secs, 200.0, 1000.0, 42);
    let mut arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(42)
        .build(&curve);
    assert!(
        arrivals.len() >= queries,
        "oversized trace still too short: {} < {queries}",
        arrivals.len()
    );
    arrivals.truncate(queries);
    arrivals
}

struct Measurement {
    queries: u64,
    wall_secs: f64,
    queries_per_sec: f64,
    events: u64,
    events_per_sec: f64,
    peak_event_queue: u64,
    batch_buffers_allocated: u64,
    batch_buffers_reused: u64,
    // Fingerprint: a hot-path change must not alter any of these.
    served: u64,
    dropped: u64,
    violation_ratio: f64,
    effective_accuracy: f64,
    reallocations: u32,
}

fn run_once(arrivals: &[QueryArrival], telemetry: bool) -> (f64, RunOutcome) {
    let mut config = SystemConfig::paper_testbed();
    if telemetry {
        config.telemetry = Some(TelemetryConfig::default());
    }
    let mut system = ServingSystem::new(
        config,
        Box::new(ProteusAllocator::default()),
        Box::new(ProteusBatching),
    );
    let start = Instant::now();
    let outcome = system.run(arrivals);
    (start.elapsed().as_secs_f64(), outcome)
}

fn measure(arrivals: &[QueryArrival], telemetry: bool) -> Measurement {
    let mut best: Option<(f64, RunOutcome)> = None;
    for _ in 0..REPEATS {
        let (secs, outcome) = run_once(arrivals, telemetry);
        match &best {
            Some((b, _)) if *b <= secs => {}
            _ => best = Some((secs, outcome)),
        }
    }
    // lint:allow(no-panic) — REPEATS > 0, so a best run always exists.
    let (wall_secs, outcome) = best.expect("REPEATS > 0");
    let s = outcome.metrics.summary();
    let hot = outcome.hot_stats;
    Measurement {
        queries: arrivals.len() as u64,
        wall_secs,
        queries_per_sec: arrivals.len() as f64 / wall_secs,
        events: hot.events_delivered,
        events_per_sec: hot.events_delivered as f64 / wall_secs,
        peak_event_queue: hot.peak_event_queue,
        batch_buffers_allocated: hot.batch_buffers_allocated,
        batch_buffers_reused: hot.batch_buffers_reused,
        served: s.total_served,
        dropped: s.total_dropped,
        violation_ratio: s.slo_violation_ratio,
        effective_accuracy: s.effective_accuracy,
        reallocations: outcome.reallocations,
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn write_instance(out: &mut String, label: &str, m: &Measurement) {
    let _ = write!(
        out,
        "    {{\"label\": \"{label}\", \"queries\": {}, \"wall_secs\": {}, \
         \"queries_per_sec\": {}, \"events\": {}, \"events_per_sec\": {}, \
         \"peak_event_queue\": {}, \"batch_buffers_allocated\": {}, \
         \"batch_buffers_reused\": {}, \"served\": {}, \"dropped\": {}, \
         \"violation_ratio\": {}, \"effective_accuracy\": {}, \
         \"reallocations\": {}}}",
        m.queries,
        json_num(m.wall_secs),
        json_num(m.queries_per_sec),
        m.events,
        json_num(m.events_per_sec),
        m.peak_event_queue,
        m.batch_buffers_allocated,
        m.batch_buffers_reused,
        m.served,
        m.dropped,
        json_num(m.violation_ratio),
        json_num(m.effective_accuracy),
        m.reallocations,
    );
}

fn print_summary(label: &str, m: &Measurement) {
    println!(
        "  {label}: {:.3} s  {:.0} q/s  {:.0} ev/s  peak_q={}  \
         bufs={}+{} reused  served={} dropped={}",
        m.wall_secs,
        m.queries_per_sec,
        m.events_per_sec,
        m.peak_event_queue,
        m.batch_buffers_allocated,
        m.batch_buffers_reused,
        m.served,
        m.dropped,
    );
}

/// Extracts `"queries_per_sec": <num>` for the labelled instance from the
/// committed baseline (hand-rolled: no JSON dependency, fixed writer).
fn baseline_qps(json: &str, label: &str) -> Option<f64> {
    let needle = format!("\"label\": \"{label}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let key = "\"queries_per_sec\": ";
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn check_mode(baseline_path: &str) -> i32 {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let Some(base_qps) = baseline_qps(&baseline, "fig4_reduced") else {
        eprintln!("no fig4_reduced queries_per_sec in {baseline_path}");
        return 2;
    };
    let arrivals = trace(REDUCED_QUERIES);
    let m = measure(&arrivals, false);
    print_summary("fig4_reduced", &m);
    let floor = base_qps * (1.0 - MAX_REGRESSION);
    println!(
        "  baseline {base_qps:.0} q/s, floor {floor:.0} q/s, measured {:.0} q/s",
        m.queries_per_sec
    );
    if m.queries_per_sec < floor {
        eprintln!(
            "PERF REGRESSION: {:.0} q/s is more than {:.0} % below the \
             committed baseline {base_qps:.0} q/s",
            m.queries_per_sec,
            MAX_REGRESSION * 100.0
        );
        return 1;
    }
    println!("perf smoke OK");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let Some(baseline) = args.get(i + 1) else {
            eprintln!("--check requires a baseline path");
            std::process::exit(2);
        };
        std::process::exit(check_mode(baseline));
    }

    let mut path = "BENCH_sim.json".to_string();
    let mut headline = HEADLINE_QUERIES;
    let mut telemetry = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--queries" {
            headline = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--queries requires a count");
        } else if a == "--telemetry" {
            telemetry = true;
        } else {
            path.clone_from(a);
        }
    }

    let mut instances: Vec<(&str, Measurement)> = Vec::new();
    let reduced = trace(REDUCED_QUERIES);
    instances.push(("fig4_reduced", measure(&reduced, telemetry)));
    let full = trace(headline);
    instances.push(("fig4_1m", measure(&full, telemetry)));

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"proteus-bench-sim/1\",\n");
    let _ = writeln!(out, "  \"repeats\": {REPEATS},");
    out.push_str("  \"instances\": [\n");
    for (i, (label, m)) in instances.iter().enumerate() {
        write_instance(&mut out, label, m);
        out.push_str(if i + 1 < instances.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    std::fs::write(&path, &out).expect("write BENCH_sim.json");
    println!("wrote {path} ({} instances)", instances.len());
    for (label, m) in &instances {
        print_summary(label, m);
    }
}
