//! Fig. 7 — ablation study: Proteus minus one component at a time.
//!
//! * w/o MS (model selection): only the most accurate variants (no
//!   accuracy scaling), placement/assignment still MILP-optimal.
//! * w/o MP (model placement): the Sommelier configuration — placement
//!   frozen after start-up, variants swap in place.
//! * w/o QA (query assignment): uniform routing over hosting devices.
//! * w/o AB (adaptive batching): static batch size 1.

use proteus_bench::{paper_trace, run_contender, summary_headers, summary_row, Contender};
use proteus_core::system::SystemConfig;
use proteus_metrics::report::TextTable;

fn ablations() -> Vec<Contender> {
    use proteus_core::batching::{ProteusBatching, StaticBatching};
    use proteus_core::schedulers::{ProteusAllocator, SommelierAllocator};
    vec![
        Contender::new(
            "Proteus",
            || Box::new(ProteusAllocator::default()),
            || Box::new(ProteusBatching),
        ),
        Contender::new(
            "Proteus w/o MS",
            || Box::new(ProteusAllocator::without_model_selection()),
            || Box::new(ProteusBatching),
        ),
        Contender::new(
            "Proteus w/o MP",
            || Box::new(SommelierAllocator::default()),
            || Box::new(ProteusBatching),
        ),
        Contender::new(
            "Proteus w/o QA",
            || Box::new(ProteusAllocator::without_query_assignment()),
            || Box::new(ProteusBatching),
        ),
        Contender::new(
            "Proteus w/o AB",
            || Box::new(ProteusAllocator::default()),
            || Box::new(StaticBatching::new(1)),
        ),
    ]
}

fn main() {
    let (_, arrivals) = paper_trace(42);
    println!(
        "Fig. 7: ablation on the diurnal trace ({} queries)\n",
        arrivals.len()
    );

    let mut table = TextTable::new(summary_headers());
    let mut rows = Vec::new();
    for contender in ablations() {
        let outcome = run_contender(&contender, SystemConfig::paper_testbed(), &arrivals);
        let s = outcome.metrics.summary();
        table.row(summary_row(contender.name, &s));
        rows.push((contender.name, s));
    }
    print!("{}", table.render());

    let find = |n: &str| {
        rows.iter()
            .find(|(name, _)| *name == n)
            .map(|(_, s)| s)
            .unwrap()
    };
    let full = find("Proteus");
    println!("\nShape checks (paper §6.5):");
    println!(
        "- w/o MS keeps 100% effective accuracy ({:.2}%) but the worst violations ({:.4} vs {:.4})",
        find("Proteus w/o MS").effective_accuracy_pct(),
        find("Proteus w/o MS").slo_violation_ratio,
        full.slo_violation_ratio
    );
    println!(
        "- w/o MP suffers the largest max accuracy drop ({:.2}% vs {:.2}%)",
        find("Proteus w/o MP").max_accuracy_drop_pct(),
        full.max_accuracy_drop_pct()
    );
    println!(
        "- w/o AB and w/o QA raise violations ({:.4} / {:.4} vs {:.4})",
        find("Proteus w/o AB").slo_violation_ratio,
        find("Proteus w/o QA").slo_violation_ratio,
        full.slo_violation_ratio
    );
}
