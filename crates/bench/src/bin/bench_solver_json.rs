//! Machine-readable companion to the `solver` criterion bench and
//! `fig10_milp_scaling`: sweeps the same three Fig. 10 axes and writes
//! `BENCH_solver.json` (or the path given as the first argument).
//!
//! The JSON is written by hand so the harness has no dependencies beyond
//! the workspace crates — it builds and runs anywhere the solver does,
//! which is what makes cross-commit comparisons (seed vs optimized solver)
//! possible: run the binary from each commit and diff the `secs` fields.
//! Each instance also records a plan fingerprint (shrink, capacity, mean
//! planned accuracy) so a speedup can be rejected if it changed answers.

use std::fmt::Write as _;
use std::time::Instant;

use proteus_core::allocation::audit::audit_plan;
use proteus_core::allocation::milp::{solve_allocation, Formulation, MilpConfig};
use proteus_core::schedulers::AllocContext;
use proteus_core::FamilyMap;
use proteus_profiler::{Cluster, ModelFamily, ModelZoo, ProfileStore, SloPolicy, VariantSpec};

/// Best-of-N timing: small N keeps the full sweep under a minute while
/// still shaving scheduler noise off the floor.
const REPEATS: u32 = 3;

fn sub_zoo(families: usize, per_family: usize) -> ModelZoo {
    let full = ModelZoo::paper_table3();
    let mut zoo = ModelZoo::new();
    for &family in ModelFamily::ALL.iter().take(families) {
        for v in full.variants_of(family).take(per_family) {
            zoo.register(VariantSpec::new(
                v.id(),
                v.name(),
                v.accuracy(),
                v.reference_latency_ms(),
                v.memory_mib(),
                v.memory_per_item_mib(),
            ));
        }
    }
    zoo
}

struct Measurement {
    secs: f64,
    shrink: f64,
    capacity: f64,
    mean_accuracy: f64,
    nodes: u64,
    pruned: u64,
    simplex_iterations: u64,
    warm_starts: u64,
    cold_solves: u64,
    solver_wall_secs: f64,
}

fn measure(cluster: &Cluster, zoo: &ModelZoo, families: usize, per_device: bool) -> Measurement {
    let store = ProfileStore::build(zoo, SloPolicy::default());
    let ctx = AllocContext {
        cluster,
        zoo,
        store: &store,
        down: &[],
    };
    let demand = FamilyMap::from_fn(|f| {
        if f.index() < families {
            30.0 + 5.0 * f.index() as f64
        } else {
            0.0
        }
    });
    let config = MilpConfig {
        formulation: if per_device {
            Formulation::PerDevice
        } else {
            Formulation::TypeAggregated
        },
        ..MilpConfig::default()
    };
    let mut best: Option<Measurement> = None;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let outcome = solve_allocation(&ctx, &demand, None, &config);
        let secs = start.elapsed().as_secs_f64();
        let m = match &outcome {
            Ok(o) => {
                // Every solve in the sweep is re-verified by the
                // independent plan auditor; a violation is a solver bug
                // and fails the whole benchmark run.
                let report = audit_plan(&ctx, &demand, &o.plan);
                assert!(
                    report.is_clean(),
                    "plan audit failed for {}-family instance: {report}",
                    families
                );
                let acc = o.plan.planned_accuracy(&ctx);
                let (sum, n) = ModelFamily::ALL
                    .iter()
                    .filter(|&&f| demand[f] > 0.0)
                    .fold((0.0, 0u32), |(s, n), &f| (s + acc[f], n + 1));
                Measurement {
                    secs,
                    shrink: o.shrink,
                    capacity: o.plan.total_capacity(),
                    mean_accuracy: if n > 0 { sum / f64::from(n) } else { 0.0 },
                    nodes: o.stats.nodes,
                    pruned: o.stats.pruned,
                    simplex_iterations: o.stats.simplex_iterations,
                    warm_starts: o.stats.warm_starts,
                    cold_solves: o.stats.cold_solves,
                    solver_wall_secs: o.stats.wall_secs(),
                }
            }
            Err(_) => Measurement {
                secs,
                shrink: f64::INFINITY,
                capacity: 0.0,
                mean_accuracy: 0.0,
                nodes: 0,
                pruned: 0,
                simplex_iterations: 0,
                warm_starts: 0,
                cold_solves: 0,
                solver_wall_secs: 0.0,
            },
        };
        match &best {
            Some(b) if b.secs <= m.secs => {}
            _ => best = Some(m),
        }
    }
    best.expect("REPEATS > 0")
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn write_instance(out: &mut String, label: &str, dim: u64, m: &Measurement) {
    let _ = write!(
        out,
        "    {{\"label\": \"{label}\", \"dim\": {dim}, \"secs\": {}, \
         \"shrink\": {}, \"capacity\": {}, \"mean_accuracy\": {}, \
         \"nodes\": {}, \"pruned\": {}, \"simplex_iterations\": {}, \
         \"warm_starts\": {}, \"cold_solves\": {}, \"solver_wall_secs\": {}}}",
        json_num(m.secs),
        json_num(m.shrink),
        json_num(m.capacity),
        json_num(m.mean_accuracy),
        m.nodes,
        m.pruned,
        m.simplex_iterations,
        m.warm_starts,
        m.cold_solves,
        json_num(m.solver_wall_secs),
    );
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_solver.json".to_string());

    let mut instances: Vec<(String, u64, Measurement)> = Vec::new();

    // Axis 1 — devices, per-device formulation (4 families x 4 variants).
    // d = 48 is the "largest per-device configuration" used as the headline
    // cross-commit comparison point.
    let zoo = sub_zoo(4, 4);
    for &d in &[6u32, 12, 20, 32, 48] {
        let cluster = Cluster::with_counts(d / 2, d / 4, d - d / 2 - d / 4);
        instances.push((
            format!("devices_pd_{d}"),
            u64::from(d),
            measure(&cluster, &zoo, 4, true),
        ));
    }

    // Axis 2 — variants, fixed 12-device cluster, 6 families.
    let cluster12 = Cluster::with_counts(6, 3, 3);
    for &per in &[1usize, 2, 3, 4, 5] {
        let zoo = sub_zoo(6, per);
        let m = measure(&cluster12, &zoo, 6, true);
        instances.push((format!("variants_pd_{}", zoo.len()), zoo.len() as u64, m));
    }

    // Axis 3 — query types, fixed cluster, 4 variants per family.
    for &q in &[1usize, 3, 5, 7, 9] {
        let zoo = sub_zoo(q, 4);
        instances.push((
            format!("qtypes_pd_{q}"),
            q as u64,
            measure(&cluster12, &zoo, q, true),
        ));
    }

    // Operating point — the aggregated formulation the controller runs.
    let zoo = ModelZoo::paper_table3();
    let cluster = Cluster::paper_testbed();
    instances.push((
        "operating_point_agg".to_string(),
        cluster.len() as u64,
        measure(&cluster, &zoo, 9, false),
    ));

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"proteus-bench-solver/1\",\n");
    let _ = writeln!(out, "  \"repeats\": {REPEATS},");
    out.push_str("  \"instances\": [\n");
    for (i, (label, dim, m)) in instances.iter().enumerate() {
        write_instance(&mut out, label, *dim, m);
        out.push_str(if i + 1 < instances.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    std::fs::write(&path, &out).expect("write BENCH_solver.json");
    println!("wrote {path} ({} instances)", instances.len());
    for (label, _, m) in &instances {
        println!(
            "  {label}: {:.4} s  nodes={} iters={} warm={}/{}",
            m.secs,
            m.nodes,
            m.simplex_iterations,
            m.warm_starts,
            m.warm_starts + m.cold_solves,
        );
    }
}
