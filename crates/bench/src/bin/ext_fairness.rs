//! §7 extension — the fairness objective.
//!
//! The paper's discussion notes that system-level accuracy optimization can
//! treat families unequally and sketches max-min fairness as future work.
//! This experiment implements it: Proteus with `fairness = true` maximizes
//! the *minimum* per-family planned accuracy and is compared against the
//! default demand-weighted objective.

use proteus_bench::{paper_trace, run_contender, Contender};
use proteus_core::batching::ProteusBatching;
use proteus_core::schedulers::ProteusAllocator;
use proteus_core::system::SystemConfig;
use proteus_metrics::report::{fmt_f, TextTable};

fn main() {
    let (_, arrivals) = paper_trace(42);
    println!(
        "§7 extension: fairness objective on the diurnal trace ({} queries)\n",
        arrivals.len()
    );

    let contenders = vec![
        Contender::new(
            "Proteus (system accuracy)",
            || Box::new(ProteusAllocator::default()),
            || Box::new(ProteusBatching),
        ),
        Contender::new(
            "Proteus (max-min fairness)",
            || Box::new(ProteusAllocator::fair()),
            || Box::new(ProteusBatching),
        ),
    ];

    let mut table = TextTable::new(vec![
        "objective",
        "system effective acc (%)",
        "worst family acc (%)",
        "acc spread across families (pp)",
        "SLO violation ratio",
    ]);
    for contender in contenders {
        let outcome = run_contender(&contender, SystemConfig::paper_testbed(), &arrivals);
        let s = outcome.metrics.summary();
        let fams = outcome.metrics.family_summaries();
        let accs: Vec<f64> = fams
            .iter()
            .map(|f| f.summary.effective_accuracy_pct())
            .collect();
        let worst = accs.iter().copied().fold(f64::INFINITY, f64::min);
        let best = accs.iter().copied().fold(0.0, f64::max);
        table.row(vec![
            contender.name.to_string(),
            fmt_f(s.effective_accuracy_pct(), 2),
            fmt_f(worst, 2),
            fmt_f(best - worst, 2),
            fmt_f(s.slo_violation_ratio, 4),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nExpected trade-off (§7): fairness lifts the worst family's accuracy\n\
         and narrows the spread, at some cost in system-level effective\n\
         accuracy — the tension the paper identifies."
    );
}
