//! Fig. 5 — responsiveness to a macro-scale demand burst.
//!
//! A flat low load with a sudden high plateau in the middle; measures how
//! fast each system re-allocates and what it costs in violations and
//! accuracy.

use proteus_bench::{paper_contenders, per_minute, run_contender, summary_headers, summary_row};
use proteus_core::system::{SolveLatency, SystemConfig};
use proteus_metrics::report::{fmt_f, sparkline, TextTable};
use proteus_workloads::{BurstyTrace, TraceBuilder};

fn main() {
    let trace = BurstyTrace::paper_like(200.0, 1100.0);
    let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(11)
        .build(&trace);
    println!(
        "Fig. 5: bursty workload ({} queries; {:.0} -> {:.0} QPS plateau in the middle third)\n",
        arrivals.len(),
        trace.low_qps,
        trace.high_qps
    );

    let mut summary = TextTable::new({
        let mut h = summary_headers();
        h.push("reallocs");
        h.push("burst-triggered");
        h
    });
    // Proteus runs twice: with the legacy zero-latency control plane and
    // with the calibrated solve-cost model (~4 s trigger-to-commit), to
    // show what a real MILP solve window costs at the burst onset.
    for (latency, suffix) in [(SolveLatency::Zero, ""), (SolveLatency::Model, " (solve)")] {
        for contender in paper_contenders() {
            if latency != SolveLatency::Zero && contender.name != "Proteus" {
                continue;
            }
            let name = format!("{}{suffix}", contender.name);
            let mut config = SystemConfig::paper_testbed();
            config.solve_latency = latency;
            let outcome = run_contender(&contender, config, &arrivals);
            let ts = outcome.metrics.timeseries();
            let served: Vec<f64> = ts.iter().map(|b| b.served() as f64).collect();
            let viol: Vec<f64> = ts.iter().map(|b| b.violations() as f64).collect();
            println!(
                "{:<16} throughput {}  violations {}",
                name,
                sparkline(&per_minute(&served)),
                sparkline(&per_minute(&viol)),
            );
            // Violations in the first minute of the burst vs the rest of it:
            // a responsive system pays once, then settles.
            let start = (trace.burst_start / 60) as usize;
            let end = (trace.burst_end / 60) as usize;
            let vm = per_minute(&viol);
            let first_min = vm.get(start).copied().unwrap_or(0.0);
            let settled: f64 = vm[(start + 1).min(vm.len())..end.min(vm.len())]
                .iter()
                .copied()
                .sum::<f64>()
                / ((end - start).saturating_sub(1).max(1)) as f64;
            println!(
                "{:<16} violations/s: burst onset {:.1}, settled burst {:.1}",
                "", first_min, settled
            );
            let s = outcome.metrics.summary();
            let mut row = summary_row(&name, &s);
            row.push(outcome.reallocations.to_string());
            row.push(outcome.burst_reallocations.to_string());
            summary.row(row);
        }
    }
    println!();
    print!("{}", summary.render());
    println!(
        "\nExpected shape (paper): INFaaS reacts fastest (allocation on the\n\
         critical path); Proteus takes an initial violation spike at the burst\n\
         onset, then re-allocates and holds the lowest violations and drop;\n\
         Clipper variants cannot adapt at all.\n\
         Proteus settled-burst violations should be well below its onset spike: {}\n\
         `Proteus (solve)` adds the modeled ~4 s MILP solve window: the burst\n\
         re-allocation commits later, so the onset spike widens by roughly the\n\
         solve time while the settled burst stays near the zero-latency row.",
        fmt_f(0.0, 0)
    );
}
