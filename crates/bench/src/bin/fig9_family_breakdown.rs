//! Fig. 9 — per-model-family breakdown of Proteus on the diurnal trace.
//!
//! The trace Zipf-splits demand across the nine applications, so each
//! family sees a different request rate; this experiment shows throughput,
//! effective accuracy (and its variation over time) and SLO violations per
//! family.

use proteus_bench::{paper_contenders, paper_trace, per_minute, run_contender};
use proteus_core::system::SystemConfig;
use proteus_metrics::report::{fmt_f, sparkline, TextTable};

fn main() {
    let (_, arrivals) = paper_trace(42);
    println!(
        "Fig. 9: Proteus per-family breakdown on the diurnal trace ({} queries)\n",
        arrivals.len()
    );

    let proteus = paper_contenders().pop().expect("Proteus is last");
    let outcome = run_contender(&proteus, SystemConfig::paper_testbed(), &arrivals);

    let mut table = TextTable::new(vec![
        "family",
        "share (%)",
        "throughput (QPS)",
        "effective acc (%)",
        "acc range over time (%)",
        "SLO violation ratio",
        "p50 lat (ms)",
        "p99 lat (ms)",
    ]);
    let total_arrived = outcome.metrics.summary().total_arrived as f64;
    for fam in outcome.metrics.family_summaries() {
        let ts = outcome.metrics.family_timeseries(fam.family);
        let accs: Vec<f64> = ts
            .iter()
            .filter(|b| b.served() >= 5)
            .filter_map(|b| b.effective_accuracy())
            .map(|a| a * 100.0)
            .collect();
        let (lo, hi) = accs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &a| {
                (l.min(a), h.max(a))
            });
        let range = if accs.is_empty() {
            "-".to_string()
        } else {
            format!("{:.1}-{:.1}", lo, hi)
        };
        let (p50, p99) = outcome
            .metrics
            .family_latency(fam.family)
            .map(|h| {
                (
                    h.percentile(0.5).map_or(0.0, |t| t.as_millis_f64()),
                    h.percentile(0.99).map_or(0.0, |t| t.as_millis_f64()),
                )
            })
            .unwrap_or((0.0, 0.0));
        table.row(vec![
            fam.family.label().to_string(),
            fmt_f(fam.summary.total_arrived as f64 / total_arrived * 100.0, 1),
            fmt_f(fam.summary.avg_throughput_qps, 1),
            fmt_f(fam.summary.effective_accuracy_pct(), 2),
            range,
            fmt_f(fam.summary.slo_violation_ratio, 4),
            fmt_f(p50, 1),
            fmt_f(p99, 1),
        ]);
    }
    print!("{}", table.render());

    println!("\nPer-family served throughput over time (per minute):");
    for fam in outcome.metrics.family_summaries() {
        let ts = outcome.metrics.family_timeseries(fam.family);
        let served: Vec<f64> = ts.iter().map(|b| b.served() as f64).collect();
        println!(
            "{:<14} {}",
            fam.family.label(),
            sparkline(&per_minute(&served))
        );
    }
    println!(
        "\nExpected shape (paper §6.7): throughput follows the Zipf split;\n\
         low-rate families (T5) show the widest accuracy variation because\n\
         they carry little weight in the system-level objective; GPT-2 is\n\
         pinned to the largest-memory accelerator; violations stay uniform\n\
         across families since batching works per device."
    );
}
