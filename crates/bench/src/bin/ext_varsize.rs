//! §7 extension — varying input sizes.
//!
//! The paper notes that NLP queries have variable-size inputs whose cost
//! the MILP ignores but "adaptive batching does take into account the
//! real-time query execution", leaving the full treatment as future work.
//! This experiment implements it: queries carry an input-cost factor,
//! batch latency scales with the *summed cost* rather than the count, and
//! the Proteus batching policy sizes batches against cost-weighted
//! latencies. A cost-oblivious variant (which assumes every input is
//! nominal while the hardware charges true costs) quantifies what that
//! awareness buys.

use proteus_core::batching::{BatchContext, BatchDecision, BatchPolicy, ProteusBatching};
use proteus_core::schedulers::ProteusAllocator;
use proteus_core::system::{ServingSystem, SystemConfig};
use proteus_core::{FamilyMap, Query};
use proteus_metrics::report::{fmt_f, TextTable};
use proteus_profiler::ModelFamily;
use proteus_workloads::{FlatTrace, TraceBuilder};

/// Delegates to Proteus batching but hides the true input costs (every
/// query looks nominal), while the executor still charges them.
#[derive(Debug, Clone, Default)]
struct CostOblivious {
    inner: ProteusBatching,
}

impl BatchPolicy for CostOblivious {
    fn name(&self) -> &'static str {
        "cost-oblivious"
    }

    fn decide(&mut self, ctx: &BatchContext<'_>) -> BatchDecision {
        let nominal: Vec<Query> = ctx.queue.iter().map(|q| q.with_cost(1.0)).collect();
        let blind = BatchContext {
            now: ctx.now,
            queue: &nominal,
            profile: ctx.profile,
            lat_table: &[],
        };
        self.inner.decide(&blind)
    }

    fn clone_box(&self) -> Box<dyn BatchPolicy> {
        Box::new(self.clone())
    }
}

fn main() {
    const QPS: f64 = 250.0;
    // A BERT-only workload with heavily variable input lengths
    // (Gamma(1.5) costs: CV ≈ 0.82, occasional 4-8x inputs).
    let arrivals = TraceBuilder::new(vec![ModelFamily::Bert])
        .seed(5)
        .variable_input_sizes(1.5)
        .build(&FlatTrace {
            qps: QPS,
            secs: 120,
        });
    let mean_cost: f64 = arrivals.iter().map(|a| a.cost).sum::<f64>() / arrivals.len() as f64;
    println!(
        "§7 var-size inputs: {} BERT queries at {QPS:.0} QPS, mean cost {:.2}, max {:.2}\n",
        arrivals.len(),
        mean_cost,
        arrivals.iter().map(|a| a.cost).fold(0.0, f64::max)
    );

    let mut config = SystemConfig::paper_testbed();
    config.realloc_period_secs = 1e9;
    config.burst_threshold = f64::INFINITY;
    let mut provision = FamilyMap::default();
    provision[ModelFamily::Bert] = QPS * mean_cost;
    config.provision_demand = Some(provision);

    let policies: Vec<Box<dyn BatchPolicy>> = vec![
        Box::new(ProteusBatching),
        Box::new(CostOblivious::default()),
    ];
    let mut table = TextTable::new(vec!["batching", "SLO violation ratio", "effective acc (%)"]);
    for policy in policies {
        let name = policy.name();
        let mut system = ServingSystem::new(
            config.clone(),
            Box::new(ProteusAllocator::default()),
            policy,
        );
        let s = system.run(&arrivals).metrics.summary();
        table.row(vec![
            name.to_string(),
            fmt_f(s.slo_violation_ratio, 4),
            fmt_f(s.effective_accuracy_pct(), 2),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nThe cost-aware policy sizes batches against the summed input cost\n\
         (a batch of long inputs is smaller), so its T_max_wait stays honest\n\
         and fewer first-in-queue queries expire — the §7 direction, realized."
    );
}
