//! Fig. 8 — sensitivity to the latency SLO.
//!
//! Sweeps the SLO multiplier from 1x to 3.5x the profiled latency of each
//! family's fastest CPU variant (§6.6) and reports average throughput,
//! maximum accuracy drop and SLO violation ratio for every system.

use proteus_bench::{paper_contenders, run_contender};
use proteus_core::system::SystemConfig;
use proteus_metrics::report::{fmt_f, TextTable};
use proteus_profiler::SloPolicy;
use proteus_workloads::{DiurnalTrace, TraceBuilder};

fn main() {
    let multipliers = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5];
    let trace = DiurnalTrace::paper_like(10 * 60, 200.0, 1000.0, 42);
    let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(42)
        .build(&trace);
    println!(
        "Fig. 8: SLO multiplier sweep on a 10-minute diurnal trace ({} queries)\n",
        arrivals.len()
    );

    let mut throughput = TextTable::new(vec!["system", "1x", "1.5x", "2x", "2.5x", "3x", "3.5x"]);
    let mut drop = throughput.clone();
    let mut violations = throughput.clone();

    for contender in paper_contenders() {
        let mut t_row = vec![contender.name.to_string()];
        let mut d_row = t_row.clone();
        let mut v_row = t_row.clone();
        for &m in &multipliers {
            let mut config = SystemConfig::paper_testbed();
            config.slo = SloPolicy::with_multiplier(m);
            let s = run_contender(&contender, config, &arrivals)
                .metrics
                .summary();
            t_row.push(fmt_f(s.avg_throughput_qps, 0));
            d_row.push(fmt_f(s.max_accuracy_drop_pct(), 1));
            v_row.push(fmt_f(s.slo_violation_ratio, 3));
        }
        throughput.row(t_row);
        drop.row(d_row);
        violations.row(v_row);
    }

    println!("Average throughput (QPS):\n{}", throughput.render());
    println!("Max accuracy drop (%):\n{}", drop.render());
    println!("SLO violation ratio:\n{}", violations.render());
    println!(
        "Expected shape (paper): violations fall and throughput rises with the\n\
         SLO for every system; the scaling systems' max accuracy drop shrinks\n\
         as looser SLOs admit more accurate (slower) variants; Proteus keeps\n\
         the lowest drop and violation ratio across the sweep."
    );
}
