//! Fig. 10 — scalability of the resource-management MILP in its three
//! input dimensions: devices (d), model variants (m) and query types (q).
//!
//! The paper measures Gurobi; this reproduction measures the workspace's
//! own branch-and-bound solver on the faithful per-device formulation, so
//! absolute times differ — the target is the *growth shape* (superlinear in
//! each dimension) and that solves stay far under the 30 s invocation
//! period at the paper-testbed scale. Ranges are reduced accordingly.

use std::time::Instant;

use proteus_core::allocation::milp::{solve_allocation, Formulation, MilpConfig};
use proteus_core::schedulers::AllocContext;
use proteus_core::FamilyMap;
use proteus_metrics::report::{fmt_f, TextTable};
use proteus_profiler::{Cluster, ModelFamily, ModelZoo, ProfileStore, SloPolicy, VariantSpec};

/// Builds a zoo with only the first `per_family` variants of each of the
/// first `families` families.
fn sub_zoo(families: usize, per_family: usize) -> ModelZoo {
    let full = ModelZoo::paper_table3();
    let mut zoo = ModelZoo::new();
    for &family in ModelFamily::ALL.iter().take(families) {
        for v in full.variants_of(family).take(per_family) {
            zoo.register(VariantSpec::new(
                v.id(),
                v.name(),
                v.accuracy(),
                v.reference_latency_ms(),
                v.memory_mib(),
                v.memory_per_item_mib(),
            ));
        }
    }
    zoo
}

fn time_solve(cluster: &Cluster, zoo: &ModelZoo, families: usize, per_device: bool) -> f64 {
    let store = ProfileStore::build(zoo, SloPolicy::default());
    let ctx = AllocContext {
        cluster,
        zoo,
        store: &store,
    };
    let demand = FamilyMap::from_fn(|f| {
        if f.index() < families {
            30.0 + 5.0 * f.index() as f64
        } else {
            0.0
        }
    });
    let config = MilpConfig {
        formulation: if per_device {
            Formulation::PerDevice
        } else {
            Formulation::TypeAggregated
        },
        ..MilpConfig::default()
    };
    let start = Instant::now();
    let _ = solve_allocation(&ctx, &demand, None, &config);
    start.elapsed().as_secs_f64()
}

fn main() {
    println!("Fig. 10: MILP solve time vs problem dimensions\n");

    // ---- devices (d): per-device formulation, 4 families x 4 variants.
    let zoo = sub_zoo(4, 4);
    let mut t = TextTable::new(vec!["devices", "per-device MILP (s)", "aggregated MILP (s)"]);
    for &d in &[6u32, 12, 20, 32, 48] {
        let cluster = Cluster::with_counts(d / 2, d / 4, d - d / 2 - d / 4);
        t.row(vec![
            d.to_string(),
            fmt_f(time_solve(&cluster, &zoo, 4, true), 3),
            fmt_f(time_solve(&cluster, &zoo, 4, false), 3),
        ]);
    }
    println!("Scaling in devices (m = 16 variants, q = 4):\n{}", t.render());

    // ---- variants (m): fixed 12-device cluster, 6 families, growing zoo.
    let cluster = Cluster::with_counts(6, 3, 3);
    let mut t = TextTable::new(vec!["variants", "per-device MILP (s)", "aggregated MILP (s)"]);
    for &per in &[1usize, 2, 3, 4, 5] {
        let zoo = sub_zoo(6, per);
        t.row(vec![
            zoo.len().to_string(),
            fmt_f(time_solve(&cluster, &zoo, 6, true), 3),
            fmt_f(time_solve(&cluster, &zoo, 6, false), 3),
        ]);
    }
    println!("Scaling in variants (d = 12, q = 6):\n{}", t.render());

    // ---- query types (q): fixed cluster, 4 variants per family.
    let mut t = TextTable::new(vec!["query types", "per-device MILP (s)", "aggregated MILP (s)"]);
    for &q in &[1usize, 3, 5, 7, 9] {
        let zoo = sub_zoo(q, 4);
        t.row(vec![
            q.to_string(),
            fmt_f(time_solve(&cluster, &zoo, q, true), 3),
            fmt_f(time_solve(&cluster, &zoo, q, false), 3),
        ]);
    }
    println!("Scaling in query types (d = 12, m = 4 per family):\n{}", t.render());

    // ---- the §6.8 headline: the operating point used by the system.
    let zoo = ModelZoo::paper_table3();
    let cluster = Cluster::paper_testbed();
    let secs = time_solve(&cluster, &zoo, 9, false);
    println!(
        "Operating point (paper testbed, 40 devices, 51 variants, 9 types,\n\
         aggregated formulation as used at runtime): {:.3} s per solve\n\
         (paper's Gurobi average: 4.2 s; both sit comfortably off the query\n\
         critical path and inside the 30 s invocation period).",
        secs
    );
}
