//! Fig. 10 — scalability of the resource-management MILP in its three
//! input dimensions: devices (d), model variants (m) and query types (q).
//!
//! The paper measures Gurobi; this reproduction measures the workspace's
//! own branch-and-bound solver on the faithful per-device formulation, so
//! absolute times differ — the target is the *growth shape* (superlinear in
//! each dimension) and that solves stay far under the 30 s invocation
//! period at the paper-testbed scale. Ranges are reduced accordingly.
//!
//! Besides wall time, every point reports the solver's own statistics
//! (branch-and-bound nodes, simplex pivots, warm-start hit rate) so the
//! cost of a replan can be attributed: many nodes with a high warm-hit
//! rate means cheap dual-simplex repairs dominate; a low rate means the
//! solver fell back to cold two-phase solves.

use proteus_core::allocation::milp::{solve_allocation, Formulation, MilpConfig};
use proteus_core::schedulers::AllocContext;
use proteus_core::FamilyMap;
use proteus_metrics::report::{fmt_f, TextTable};
use proteus_profiler::{Cluster, ModelFamily, ModelZoo, ProfileStore, SloPolicy, VariantSpec};
use proteus_solver::SolveStats;

/// Builds a zoo with only the first `per_family` variants of each of the
/// first `families` families.
fn sub_zoo(families: usize, per_family: usize) -> ModelZoo {
    let full = ModelZoo::paper_table3();
    let mut zoo = ModelZoo::new();
    for &family in ModelFamily::ALL.iter().take(families) {
        for v in full.variants_of(family).take(per_family) {
            zoo.register(VariantSpec::new(
                v.id(),
                v.name(),
                v.accuracy(),
                v.reference_latency_ms(),
                v.memory_mib(),
                v.memory_per_item_mib(),
            ));
        }
    }
    zoo
}

fn solve_point(cluster: &Cluster, zoo: &ModelZoo, families: usize, per_device: bool) -> SolveStats {
    let store = ProfileStore::build(zoo, SloPolicy::default());
    let ctx = AllocContext {
        cluster,
        zoo,
        store: &store,
        down: &[],
    };
    let demand = FamilyMap::from_fn(|f| {
        if f.index() < families {
            30.0 + 5.0 * f.index() as f64
        } else {
            0.0
        }
    });
    let config = MilpConfig {
        formulation: if per_device {
            Formulation::PerDevice
        } else {
            Formulation::TypeAggregated
        },
        ..MilpConfig::default()
    };
    match solve_allocation(&ctx, &demand, None, &config) {
        Ok(outcome) => outcome.stats,
        Err(_) => SolveStats::default(),
    }
}

fn stat_cells(st: &SolveStats) -> [String; 4] {
    [
        fmt_f(st.wall_secs(), 3),
        st.nodes.to_string(),
        st.simplex_iterations.to_string(),
        fmt_f(st.warm_hit_rate() * 100.0, 0),
    ]
}

fn axis_header(dim: &str) -> TextTable {
    TextTable::new(vec![
        dim,
        "pd wall (s)",
        "pd nodes",
        "pd iters",
        "pd warm%",
        "agg wall (s)",
        "agg nodes",
        "agg iters",
        "agg warm%",
    ])
}

fn axis_row(t: &mut TextTable, label: String, pd: &SolveStats, agg: &SolveStats) {
    let mut row = vec![label];
    row.extend(stat_cells(pd));
    row.extend(stat_cells(agg));
    t.row(row);
}

fn main() {
    println!("Fig. 10: MILP solve time vs problem dimensions");
    println!("(pd = per-device formulation, agg = type-aggregated)\n");

    // ---- devices (d): per-device formulation, 4 families x 4 variants.
    let zoo = sub_zoo(4, 4);
    let mut t = axis_header("devices");
    for &d in &[6u32, 12, 20, 32, 48] {
        let cluster = Cluster::with_counts(d / 2, d / 4, d - d / 2 - d / 4);
        let pd = solve_point(&cluster, &zoo, 4, true);
        let agg = solve_point(&cluster, &zoo, 4, false);
        axis_row(&mut t, d.to_string(), &pd, &agg);
    }
    println!(
        "Scaling in devices (m = 16 variants, q = 4):\n{}",
        t.render()
    );

    // ---- variants (m): fixed 12-device cluster, 6 families, growing zoo.
    let cluster = Cluster::with_counts(6, 3, 3);
    let mut t = axis_header("variants");
    for &per in &[1usize, 2, 3, 4, 5] {
        let zoo = sub_zoo(6, per);
        let pd = solve_point(&cluster, &zoo, 6, true);
        let agg = solve_point(&cluster, &zoo, 6, false);
        axis_row(&mut t, zoo.len().to_string(), &pd, &agg);
    }
    println!("Scaling in variants (d = 12, q = 6):\n{}", t.render());

    // ---- query types (q): fixed cluster, 4 variants per family.
    let mut t = axis_header("query types");
    for &q in &[1usize, 3, 5, 7, 9] {
        let zoo = sub_zoo(q, 4);
        let pd = solve_point(&cluster, &zoo, q, true);
        let agg = solve_point(&cluster, &zoo, q, false);
        axis_row(&mut t, q.to_string(), &pd, &agg);
    }
    println!(
        "Scaling in query types (d = 12, m = 4 per family):\n{}",
        t.render()
    );

    // ---- the §6.8 headline: the operating point used by the system.
    let zoo = ModelZoo::paper_table3();
    let cluster = Cluster::paper_testbed();
    let st = solve_point(&cluster, &zoo, 9, false);
    println!(
        "Operating point (paper testbed, 40 devices, 51 variants, 9 types,\n\
         aggregated formulation as used at runtime): {:.3} s per solve —\n\
         {} nodes, {} simplex iterations, {:.0}% warm-start hits\n\
         (paper's Gurobi average: 4.2 s; both sit comfortably off the query\n\
         critical path and inside the 30 s invocation period).",
        st.wall_secs(),
        st.nodes,
        st.simplex_iterations,
        st.warm_hit_rate() * 100.0,
    );
}
