//! Fig. 6 — adaptive batching isolated from resource allocation.
//!
//! Identical single-family load (same QPS) under uniform, Poisson and
//! Gamma(0.05) inter-arrival distributions; the allocation is frozen so the
//! batching policy is the only variable. Compares Proteus batching with
//! Nexus early-drop and Clipper AIMD, all mounted on the Proteus allocator
//! exactly as §6.4 does.

use proteus_core::batching::{AimdBatching, BatchPolicy, NexusBatching, ProteusBatching};
use proteus_core::schedulers::ProteusAllocator;
use proteus_core::system::{ServingSystem, SystemConfig};
use proteus_core::FamilyMap;
use proteus_metrics::report::{fmt_f, TextTable};
use proteus_profiler::ModelFamily;
use proteus_workloads::{ArrivalKind, ArrivalProcess, QueryArrival};

fn stream(kind: ArrivalKind, qps: f64, secs: f64, seed: u64) -> Vec<QueryArrival> {
    ArrivalProcess::new(kind, qps, seed)
        .take_for_secs(secs)
        .into_iter()
        .map(|at| QueryArrival::new(at, ModelFamily::EfficientNet))
        .collect()
}

fn main() {
    const QPS: f64 = 600.0;
    const SECS: f64 = 120.0;
    println!("Fig. 6: batching policies at a fixed {QPS:.0} QPS for {SECS:.0} s per arrival law\n");

    // Freeze the allocation: provision for the offered load (with the
    // paper's tight 1.05 capacity margin, so batching efficiency is what
    // separates the policies), then disable re-allocation so batching is
    // isolated.
    let mut config = SystemConfig::paper_testbed();
    config.realloc_period_secs = 1e9;
    config.burst_threshold = f64::INFINITY;
    config.demand_headroom = 1.05;
    let mut provision = FamilyMap::default();
    provision[ModelFamily::EfficientNet] = QPS;
    config.provision_demand = Some(provision);

    let kinds: [(&str, ArrivalKind); 3] = [
        ("uniform", ArrivalKind::Uniform),
        ("poisson", ArrivalKind::Poisson),
        ("gamma(0.05)", ArrivalKind::Gamma { shape: 0.05 }),
    ];
    let policies: Vec<(&str, Box<dyn BatchPolicy>)> = vec![
        ("Proteus", Box::new(ProteusBatching)),
        ("Proteus w/ Nexus batching", Box::new(NexusBatching)),
        (
            "Proteus w/ Clipper batching",
            Box::new(AimdBatching::default()),
        ),
    ];

    let mut table = TextTable::new(vec!["batching", "uniform", "poisson", "gamma(0.05)"]);
    let mut batch_table = table.clone();
    let mut ratios: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, policy) in &policies {
        let mut row = vec![name.to_string()];
        let mut batch_row = row.clone();
        let mut rs = Vec::new();
        for (_, kind) in kinds {
            let arrivals = stream(kind, QPS, SECS, 77);
            let mut system = ServingSystem::new(
                config.clone(),
                Box::new(ProteusAllocator::default()),
                policy.clone(),
            );
            let outcome = system.run(&arrivals);
            let s = outcome.metrics.summary();
            row.push(fmt_f(s.slo_violation_ratio, 4));
            rs.push(s.slo_violation_ratio);
            let (q, b): (u64, u64) = outcome
                .device_stats
                .iter()
                .fold((0, 0), |(q, b), d| (q + d.queries, b + d.batches));
            batch_row.push(fmt_f(q as f64 / b.max(1) as f64, 1));
        }
        table.row(row);
        batch_table.row(batch_row);
        ratios.push((name.to_string(), rs));
    }
    println!("SLO violation ratio:\n");
    print!("{}", table.render());
    println!("\nMean batch size (the mechanism behind the ratios):\n");
    print!("{}", batch_table.render());

    let ratio_vs_proteus = |col: usize, name: &str| -> f64 {
        let p = ratios[0].1[col].max(1e-4);
        ratios
            .iter()
            .find(|(n, _)| n.contains(name))
            .map_or(0.0, |(_, r)| r[col] / p)
    };
    println!(
        "\nShape check (paper: Nexus 2-3x, Clipper ~4x worse on bursty traces):\n\
         poisson:      nexus/proteus = {:.1}x, aimd/proteus = {:.1}x\n\
         gamma(0.05):  nexus/proteus = {:.1}x, aimd/proteus = {:.1}x",
        ratio_vs_proteus(1, "Nexus"),
        ratio_vs_proteus(1, "Clipper"),
        ratio_vs_proteus(2, "Nexus"),
        ratio_vs_proteus(2, "Clipper"),
    );
}
