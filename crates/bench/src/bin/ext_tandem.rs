//! §7 extension — accuracy scaling in tandem with hardware scaling.
//!
//! The paper's discussion: hardware scaling is slow (server provisioning
//! takes time), so accuracy scaling should absorb sudden bursts while new
//! servers spin up. This experiment runs a sustained burst against (a) a
//! fixed cluster (accuracy scaling only), and (b) an elastic cluster that
//! orders extra V100s when even minimum accuracy cannot cover demand.

use proteus_core::batching::ProteusBatching;
use proteus_core::schedulers::ProteusAllocator;
use proteus_core::system::{ElasticScaling, ServingSystem, SystemConfig};
use proteus_metrics::report::{fmt_f, sparkline, TextTable};
use proteus_profiler::Cluster;
use proteus_workloads::{BurstyTrace, TraceBuilder};

fn main() {
    // A deliberately under-sized cluster so the burst saturates it even at
    // minimum accuracy.
    let base = Cluster::with_counts(6, 3, 3);
    let trace = BurstyTrace {
        low_qps: 150.0,
        high_qps: 1500.0,
        burst_start: 120,
        burst_end: 480,
        secs: 600,
    };
    let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(17)
        .build(&trace);
    println!(
        "§7 tandem: {} queries; burst {:.0} -> {:.0} QPS for 6 minutes on a 12-device cluster\n",
        arrivals.len(),
        trace.low_qps,
        trace.high_qps
    );

    let mut table = TextTable::new(vec![
        "cluster",
        "devices added",
        "avg throughput (QPS)",
        "effective acc (%)",
        "max acc drop (%)",
        "SLO violation ratio",
    ]);
    for (label, elastic) in [
        ("fixed (accuracy scaling only)", None),
        (
            "elastic (tandem, 60 s provisioning)",
            Some(ElasticScaling {
                provision_delay_secs: 60.0,
                max_extra_devices: 8,
                shrink_trigger: 1.02,
            }),
        ),
    ] {
        let mut config = SystemConfig::paper_testbed();
        config.cluster = base.clone();
        config.realloc_period_secs = 15.0;
        config.elastic = elastic;
        let mut system = ServingSystem::new(
            config,
            Box::new(ProteusAllocator::default()),
            Box::new(ProteusBatching),
        );
        let outcome = system.run(&arrivals);
        let s = outcome.metrics.summary();
        table.row(vec![
            label.to_string(),
            outcome.provisioned_devices.to_string(),
            fmt_f(s.avg_throughput_qps, 1),
            fmt_f(s.effective_accuracy_pct(), 2),
            fmt_f(s.max_accuracy_drop_pct(), 2),
            fmt_f(s.slo_violation_ratio, 4),
        ]);
        let ts = outcome.metrics.timeseries();
        let acc: Vec<f64> = ts
            .iter()
            .map(|b| b.effective_accuracy().unwrap_or(1.0))
            .collect();
        let served: Vec<f64> = ts.iter().map(|b| b.served() as f64).collect();
        let minute = |s: &[f64]| -> Vec<f64> {
            s.chunks(30)
                .map(|c| c.iter().sum::<f64>() / c.len() as f64)
                .collect()
        };
        println!("{label}:");
        println!("  throughput {}", sparkline(&minute(&served)));
        println!("  accuracy   {}", sparkline(&minute(&acc)));
    }
    println!();
    print!("{}", table.render());
    println!(
        "\nExpected shape (§7): both clusters dive to low accuracy at the burst\n\
         onset; the elastic one recovers throughput and accuracy as ordered\n\
         V100s arrive, while the fixed one stays scaled down for the whole\n\
         burst — accuracy scaling covers exactly the provisioning gap."
    );
}
