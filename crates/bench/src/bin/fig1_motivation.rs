//! Fig. 1 — the motivation for accuracy scaling.
//!
//! (a) Accuracy vs. batch-1 throughput of every EfficientNet variant on the
//!     three device types.
//! (b) System accuracy vs. system throughput capacity for all 5^5 = 3125
//!     placements of 5 EfficientNet variants onto a 5-device cluster, plus
//!     the Pareto frontier.

use proteus_metrics::report::{fmt_f, TextTable};
use proteus_profiler::{DeviceType, LatencyModel, ModelFamily, ModelZoo, ProfileStore, SloPolicy};

fn main() {
    let zoo = ModelZoo::paper_table3();
    let store = ProfileStore::build(&zoo, SloPolicy::default());
    let model = LatencyModel::default();

    // ------------------------------------------------------------- Fig. 1a
    println!("Fig. 1a: EfficientNet accuracy vs batch-1 throughput per device\n");
    let mut table = TextTable::new(vec![
        "variant",
        "accuracy (%)",
        "CPU QPS",
        "1080Ti QPS",
        "V100 QPS",
    ]);
    for v in zoo.variants_of(ModelFamily::EfficientNet) {
        let qps = |d: DeviceType| 1000.0 / model.latency_ms(v, d, 1);
        table.row(vec![
            v.name().to_string(),
            fmt_f(v.accuracy() * 100.0, 1),
            fmt_f(qps(DeviceType::Cpu), 1),
            fmt_f(qps(DeviceType::Gtx1080Ti), 1),
            fmt_f(qps(DeviceType::V100), 1),
        ]);
    }
    print!("{}", table.render());
    println!("\nShape check: on every device, lower accuracy => higher throughput;");
    println!("for a fixed variant, V100 > 1080Ti > CPU.\n");

    // ------------------------------------------------------------- Fig. 1b
    // 5 variants (b0, b2, b4, b6, b7 for spread) on 5 devices
    // (2 CPU, 2 1080Ti, 1 V100). Every device serves its SLO-safe peak.
    let variants: Vec<_> = zoo
        .variants_of(ModelFamily::EfficientNet)
        .filter(|v| matches!(v.id().index, 0 | 2 | 4 | 6 | 7))
        .collect();
    let devices = [
        DeviceType::Cpu,
        DeviceType::Cpu,
        DeviceType::Gtx1080Ti,
        DeviceType::Gtx1080Ti,
        DeviceType::V100,
    ];
    let n = variants.len();
    let mut configs: Vec<(f64, f64)> = Vec::with_capacity(n.pow(5));
    for code in 0..n.pow(5) {
        let mut c = code;
        let mut throughput = 0.0;
        let mut acc_weighted = 0.0;
        for &d in &devices {
            let v = variants[c % n];
            c /= n;
            let peak = store.peak_qps(v.id(), d);
            throughput += peak;
            acc_weighted += peak * v.accuracy();
        }
        let accuracy = if throughput > 0.0 {
            acc_weighted / throughput * 100.0
        } else {
            0.0
        };
        configs.push((throughput, accuracy));
    }
    println!(
        "Fig. 1b: {} configurations of 5 variants x 5 devices",
        configs.len()
    );

    // Pareto frontier: no other config has both >= throughput and >= accuracy.
    let mut frontier: Vec<(f64, f64)> = Vec::new();
    let mut sorted = configs.clone();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.total_cmp(&a.1)));
    let mut best_acc = f64::NEG_INFINITY;
    for &(t, a) in &sorted {
        if a > best_acc + 1e-9 {
            frontier.push((t, a));
            best_acc = a;
        }
    }
    frontier.sort_by(|a, b| a.0.total_cmp(&b.0));
    println!("Pareto frontier ({} points):\n", frontier.len());
    let mut table = TextTable::new(vec!["capacity (QPS)", "system accuracy (%)"]);
    for &(t, a) in &frontier {
        table.row(vec![fmt_f(t, 1), fmt_f(a, 2)]);
    }
    print!("{}", table.render());
    let (min_t, max_t) = (
        configs.iter().map(|c| c.0).fold(f64::INFINITY, f64::min),
        configs.iter().map(|c| c.0).fold(0.0, f64::max),
    );
    println!(
        "\nCapacity spans {:.0}-{:.0} QPS across configurations; the frontier",
        min_t, max_t
    );
    println!("trades accuracy monotonically for capacity — the decision space the MILP searches.");
}
