//! §6.2 (fidelity) — simulator vs. "cluster" comparison.
//!
//! The paper validates its simulator against the physical cluster and
//! reports average differences of 0.12 % (effective accuracy), 0.82 %
//! (throughput) and 0.5 % (SLO violation ratio), attributing the gap to
//! latency variance, container startup delays and background effects. This
//! experiment reproduces that comparison: the same trace is served twice,
//! once with deterministic profiled latencies (the simulator) and once with
//! execution noise enabled (the cluster stand-in).

use proteus_bench::{paper_contenders, paper_trace, run_contender};
use proteus_core::system::SystemConfig;
use proteus_metrics::report::{fmt_f, TextTable};

fn main() {
    let (_, arrivals) = paper_trace(42);
    println!(
        "Sim vs cluster: same trace ({} queries), deterministic vs noisy execution\n",
        arrivals.len()
    );

    let mut table = TextTable::new(vec![
        "system",
        "Δ throughput (%)",
        "Δ effective acc (pp)",
        "Δ violation ratio (pp)",
    ]);
    for contender in paper_contenders() {
        let sim = run_contender(&contender, SystemConfig::paper_testbed(), &arrivals)
            .metrics
            .summary();
        // "Cluster": 6 % latency jitter plus up to 2 s container startup.
        let cluster_cfg = SystemConfig::paper_testbed().with_cluster_noise(0.06, 2.0);
        let cluster = run_contender(&contender, cluster_cfg, &arrivals)
            .metrics
            .summary();
        table.row(vec![
            contender.name.to_string(),
            fmt_f(
                (sim.avg_throughput_qps - cluster.avg_throughput_qps).abs()
                    / cluster.avg_throughput_qps.max(1e-9)
                    * 100.0,
                2,
            ),
            fmt_f(
                (sim.effective_accuracy - cluster.effective_accuracy).abs() * 100.0,
                2,
            ),
            fmt_f(
                (sim.slo_violation_ratio - cluster.slo_violation_ratio).abs() * 100.0,
                2,
            ),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nExpected shape (paper): sub-percent accuracy difference, ~1%\n\
         throughput difference, ~0.5pp violation-ratio difference — the\n\
         simulator faithfully predicts cluster behaviour."
    );
}
