//! Shared experiment harness for the per-figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). This library centralizes the contender
//! line-up, the standard workload, and result-table helpers so that all
//! experiments agree on their setup.

#![forbid(unsafe_code)]

use proteus_core::batching::{AimdBatching, BatchPolicy, NexusBatching, ProteusBatching};
use proteus_core::schedulers::{
    Allocator, ClipperAllocator, ClipperMode, InfaasAccuracyAllocator, ProteusAllocator,
    SommelierAllocator,
};
use proteus_core::system::{RunOutcome, ServingSystem, SystemConfig};
use proteus_metrics::RunSummary;
use proteus_workloads::{DemandTrace, DiurnalTrace, QueryArrival, TraceBuilder};

/// One contender: a display name plus factory closures for its allocator
/// and batching policy (fresh state per run).
pub struct Contender {
    /// Name as shown in result tables (matches the paper's legend).
    pub name: &'static str,
    allocator: fn() -> Box<dyn Allocator>,
    batching: fn() -> Box<dyn BatchPolicy>,
}

impl Contender {
    /// Creates a contender from factory functions.
    pub fn new(
        name: &'static str,
        allocator: fn() -> Box<dyn Allocator>,
        batching: fn() -> Box<dyn BatchPolicy>,
    ) -> Self {
        Self {
            name,
            allocator,
            batching,
        }
    }

    /// Instantiates the allocator.
    pub fn allocator(&self) -> Box<dyn Allocator> {
        (self.allocator)()
    }

    /// Instantiates the batching policy prototype.
    pub fn batching(&self) -> Box<dyn BatchPolicy> {
        (self.batching)()
    }
}

/// The five systems of the end-to-end comparison (§6.1.1), with the
/// batching each uses in the paper: Clipper runs its own AIMD, Sommelier is
/// extended with Proteus batching, INFaaS' batching is tied to its
/// allocation (approximated by the work-conserving early-drop policy), and
/// Proteus runs its own adaptive batching.
pub fn paper_contenders() -> Vec<Contender> {
    vec![
        Contender {
            name: "Clipper-HA",
            allocator: || Box::new(ClipperAllocator::new(ClipperMode::HighAccuracy)),
            batching: || Box::new(AimdBatching::default()),
        },
        Contender {
            name: "Clipper-HT",
            allocator: || Box::new(ClipperAllocator::new(ClipperMode::HighThroughput)),
            batching: || Box::new(AimdBatching::default()),
        },
        Contender {
            name: "Sommelier",
            allocator: || Box::new(SommelierAllocator::default()),
            batching: || Box::new(ProteusBatching),
        },
        Contender {
            name: "INFaaS-Accuracy",
            allocator: || Box::new(InfaasAccuracyAllocator::default()),
            batching: || Box::new(NexusBatching),
        },
        Contender {
            name: "Proteus",
            allocator: || Box::new(ProteusAllocator::default()),
            batching: || Box::new(ProteusBatching),
        },
    ]
}

/// The standard 24-minute Twitter-like workload of the end-to-end
/// experiments: diurnal with two peaks, base 200 → peak 1000 QPS, Zipf
/// split across the nine applications (§6.1.3).
pub fn paper_trace(seed: u64) -> (DiurnalTrace, Vec<QueryArrival>) {
    let trace = DiurnalTrace::paper_like(24 * 60, 200.0, 1000.0, seed);
    let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(seed)
        .build(&trace);
    (trace, arrivals)
}

/// Runs one contender on a trace with the given config.
pub fn run_contender(
    contender: &Contender,
    config: SystemConfig,
    arrivals: &[QueryArrival],
) -> RunOutcome {
    let mut system = ServingSystem::new(config, contender.allocator(), contender.batching());
    system.run(arrivals)
}

/// Formats the standard per-system summary row used by several figures:
/// `[name, avg throughput, effective accuracy %, max drop %, violation ratio]`.
pub fn summary_row(name: &str, summary: &RunSummary) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.1}", summary.avg_throughput_qps),
        format!("{:.2}", summary.effective_accuracy_pct()),
        format!("{:.2}", summary.max_accuracy_drop_pct()),
        format!("{:.4}", summary.slo_violation_ratio),
    ]
}

/// Standard headers matching [`summary_row`].
pub fn summary_headers() -> Vec<&'static str> {
    vec![
        "system",
        "avg throughput (QPS)",
        "effective acc (%)",
        "max acc drop (%)",
        "SLO violation ratio",
    ]
}

/// Per-minute aggregation of a 1-second bucket series (for compact
/// timeseries tables).
pub fn per_minute(series: &[f64]) -> Vec<f64> {
    series
        .chunks(60)
        .map(|c| c.iter().sum::<f64>() / c.len().max(1) as f64)
        .collect()
}

/// Prints the demand curve of a trace per minute (the "Demand" series every
/// timeseries figure carries).
pub fn demand_per_minute(trace: &dyn DemandTrace) -> Vec<f64> {
    let series: Vec<f64> = (0..trace.duration_secs())
        .map(|s| trace.qps_at(s))
        .collect();
    per_minute(&series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_workloads::FlatTrace;

    #[test]
    fn contender_lineup_matches_paper() {
        let names: Vec<&str> = paper_contenders().iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            vec![
                "Clipper-HA",
                "Clipper-HT",
                "Sommelier",
                "INFaaS-Accuracy",
                "Proteus"
            ]
        );
    }

    #[test]
    fn contenders_produce_fresh_instances() {
        let c = &paper_contenders()[4];
        assert_eq!(c.allocator().name(), "proteus");
        assert_eq!(c.batching().name(), "proteus");
    }

    #[test]
    fn per_minute_averages() {
        let series: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let mins = per_minute(&series);
        assert_eq!(mins.len(), 2);
        assert!((mins[0] - 29.5).abs() < 1e-9);
        assert!((mins[1] - 89.5).abs() < 1e-9);
    }

    #[test]
    fn run_contender_smoke() {
        let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
            .seed(1)
            .build(&FlatTrace { qps: 30.0, secs: 5 });
        let outcome = run_contender(&paper_contenders()[4], SystemConfig::small(), &arrivals);
        let s = outcome.metrics.summary();
        assert_eq!(s.total_arrived, s.total_served + s.total_dropped);
    }
}
