//! `trace-query` — inspect a flight-recorder JSONL trace.
//!
//! ```sh
//! trace-query run.jsonl query 17   # one query's lifecycle, reconstructed
//! trace-query run.jsonl blame     # who to blame for each SLO violation
//! trace-query run.jsonl summary   # lifecycle counts
//! trace-query run.jsonl alerts    # SLO burn-rate alert transitions
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use proteus_metrics::report::{fmt_f, TextTable};
use proteus_trace::{
    blame, parse_jsonl, query_lifecycle, BlameCause, BlameVerdict, EventKind, LifecycleStats,
    TraceEvent,
};

const USAGE: &str = "\
usage: trace-query <trace.jsonl> query <id>   reconstruct one query's lifecycle
       trace-query <trace.jsonl> blame        attribute every SLO violation
       trace-query <trace.jsonl> summary      lifecycle counts
       trace-query <trace.jsonl> alerts       SLO burn-rate alert transitions

Reads a JSONL trace recorded with `proteus <config> --trace <path>`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        None | Some("--help" | "-h")
    ) {
        eprintln!("{USAGE}");
        return ExitCode::from(if args.is_empty() { 2 } else { 0 });
    }
    let path = &args[0];
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_jsonl(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match args.get(1).map(String::as_str) {
        Some("query") => {
            let Some(id) = args.get(2).and_then(|s| s.parse::<u64>().ok()) else {
                eprintln!("error: `query` needs a numeric query id\n\n{USAGE}");
                return ExitCode::FAILURE;
            };
            render_query(&events, id)
        }
        Some("blame") => render_blame(&events),
        Some("summary") => render_summary(&events),
        Some("alerts") => render_alerts(&events),
        other => {
            let what = other.unwrap_or("nothing");
            eprintln!("error: unknown command `{what}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // A closed pipe (`trace-query … | head`) is a normal way to consume the
    // per-violation listing, not an error.
    use std::io::Write as _;
    if let Err(e) = std::io::stdout().write_all(report.as_bytes()) {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("error: writing output: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Milliseconds with microsecond precision, the natural scale for SLOs.
fn ms(t: proteus_sim::SimTime) -> String {
    fmt_f(t.as_millis_f64(), 3)
}

/// One human-readable line per event kind.
fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::WorkerOnline {
            device,
            device_type,
        } => format!("worker {device} ({}) online", device_type.label()),
        EventKind::Arrived { query, family } => {
            format!("query {query} arrived (family {})", family.label())
        }
        EventKind::Routed { query, device } => format!("query {query} routed to {device}"),
        EventKind::Enqueued {
            query,
            device,
            depth,
        } => format!("query {query} enqueued on {device} (depth {depth})"),
        EventKind::BatchFormed {
            device,
            batch,
            queries,
        } => format!("batch {batch} formed on {device} from queries {queries:?}"),
        EventKind::ExecStarted {
            device,
            batch,
            variant,
            size,
            until,
        } => format!(
            "batch {batch} ({variant} \u{00d7}{size}) executing on {device} until {} ms",
            ms(*until)
        ),
        EventKind::ExecCompleted { device, batch } => {
            format!("batch {batch} completed on {device}")
        }
        EventKind::ServedOnTime { query, latency } => {
            format!("query {query} served on time (latency {} ms)", ms(*latency))
        }
        EventKind::ServedLate { query, latency } => {
            format!("query {query} served LATE (latency {} ms)", ms(*latency))
        }
        EventKind::Dropped { query, reason } => {
            format!("query {query} DROPPED ({})", reason.label())
        }
        EventKind::ModelLoadStarted {
            device,
            variant,
            until,
        } => match variant {
            Some(v) => format!("{device} loading {v} until {} ms", ms(*until)),
            None => format!("{device} unloading until {} ms", ms(*until)),
        },
        EventKind::ModelLoadFinished { device } => format!("{device} load finished"),
        EventKind::ReplanTriggered { cause } => format!("replan triggered ({})", cause.label()),
        EventKind::PlanApplied { changed, shrink } => {
            format!("plan applied ({changed} devices changed, shrink {shrink})")
        }
        EventKind::SolveStats {
            nodes,
            pivots,
            warm_starts,
            wall_nanos,
        } => format!(
            "solver: {nodes} nodes, {pivots} pivots, {warm_starts} warm starts, {} ms wall",
            fmt_f(*wall_nanos as f64 / 1e6, 2)
        ),
        EventKind::AuditReport {
            violations,
            devices_checked,
            families_checked,
        } => format!(
            "plan audit: {violations} violation(s) over {devices_checked} devices, \
             {families_checked} families"
        ),
        EventKind::WorkerCrashed { device } => format!("{device} crashed"),
        EventKind::WorkerRecovered { device } => format!("{device} recovered"),
        EventKind::QueryRetried {
            query,
            from,
            attempt,
        } => format!("query {query} retried away from {from} (attempt {attempt})"),
        EventKind::LoadFailed {
            device,
            variant,
            attempt,
        } => match variant {
            Some(v) => format!("{device} load of {v} failed (attempt {attempt})"),
            None => format!("{device} unload failed (attempt {attempt})"),
        },
        EventKind::StragglerStarted { device, slowdown } => {
            format!("{device} straggling ({slowdown}x slower)")
        }
        EventKind::StragglerEnded { device } => format!("{device} back to nominal speed"),
        EventKind::AlertFired {
            scope,
            severity,
            burn,
            long_secs,
            short_secs,
        } => format!(
            "ALERT {} fired for {} (burn {} over {}s/{}s windows)",
            severity.label(),
            scope.map_or("all families", |f| f.label()),
            fmt_f(*burn, 2),
            fmt_f(*long_secs, 0),
            fmt_f(*short_secs, 0),
        ),
        EventKind::AlertResolved {
            scope,
            severity,
            burn,
            long_secs,
            short_secs,
        } => format!(
            "alert {} resolved for {} (burn {} over {}s/{}s windows)",
            severity.label(),
            scope.map_or("all families", |f| f.label()),
            fmt_f(*burn, 2),
            fmt_f(*long_secs, 0),
            fmt_f(*short_secs, 0),
        ),
        EventKind::SolveStarted { cause, until } => format!(
            "solve started ({}), plan commits at {} ms",
            cause.label(),
            ms(*until)
        ),
        EventKind::SolveComplete { cause } => {
            format!("solve complete ({}), new plan committing", cause.label())
        }
        EventKind::PlanDiscarded { cause, reason } => format!(
            "in-flight plan ({}) DISCARDED ({})",
            cause.label(),
            reason.label()
        ),
    }
}

/// `trace-query <file> query <id>`: lifecycle plus, for violations, the
/// blame verdict.
fn render_query(events: &[TraceEvent], id: u64) -> String {
    let life = query_lifecycle(events, id);
    if life.is_empty() {
        return format!("query {id}: no events in trace\n");
    }
    let mut out = format!("query {id}: {} events\n", life.len());
    let t0 = life[0].at;
    for e in &life {
        let _ = writeln!(
            out,
            "  {:>12}  +{:>10}  {}",
            format!("{} ms", ms(e.at)),
            format!("{} ms", ms(e.at.saturating_sub(t0))),
            describe(&e.kind)
        );
    }
    if let Some(v) = blame(events).verdicts.iter().find(|v| v.query == id) {
        let _ = writeln!(out, "verdict: {}", verdict_line(v));
    }
    out
}

fn verdict_line(v: &BlameVerdict) -> String {
    if v.cause == BlameCause::Shed {
        return "shed (rejected at admission)".to_string();
    }
    let mut line = format!(
        "{} (waited {} ms queueing, {} ms model-load, {} ms batch-wait)",
        v.cause.label(),
        ms(v.queueing),
        ms(v.model_load),
        ms(v.batch_wait)
    );
    if v.stale_plan > proteus_sim::SimTime::ZERO {
        let _ = write!(line, " [{} ms under a stale plan]", ms(v.stale_plan));
    }
    line
}

/// `trace-query <file> blame`: per-cause counts, then every verdict.
fn render_blame(events: &[TraceEvent]) -> String {
    let stats = LifecycleStats::from_events(events);
    let report = blame(events);
    let mut out = format!(
        "{} SLO violations out of {} queries\n",
        report.total(),
        stats.arrived
    );
    if report.total() == 0 {
        return out;
    }
    let mut t = TextTable::new(vec!["cause", "violations", "share (%)"]);
    for cause in BlameCause::ALL {
        let n = report.count(cause);
        if n > 0 {
            t.row(vec![
                cause.label().into(),
                n.to_string(),
                fmt_f(n as f64 / report.total() as f64 * 100.0, 1),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    let stale = report.stale_affected();
    if stale > 0 {
        let _ = writeln!(
            out,
            "{stale} violation(s) overlapped an open solve window (stale plan); \
             overlap shown per verdict below"
        );
    }
    for v in &report.verdicts {
        let _ = writeln!(
            out,
            "  query {:>6} at {:>12} ms: {}",
            v.query,
            ms(v.at),
            verdict_line(v)
        );
    }
    out
}

/// Counts alert transitions in a trace: `(fired, resolved)`.
fn alert_counts(events: &[TraceEvent]) -> (u64, u64) {
    let mut fired = 0;
    let mut resolved = 0;
    for e in events {
        match e.kind {
            EventKind::AlertFired { .. } => fired += 1,
            EventKind::AlertResolved { .. } => resolved += 1,
            _ => {}
        }
    }
    (fired, resolved)
}

/// `trace-query <file> summary`: whole-trace lifecycle counts.
fn render_summary(events: &[TraceEvent]) -> String {
    let stats = LifecycleStats::from_events(events);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec!["events".into(), events.len().to_string()]);
    t.row(vec!["arrived".into(), stats.arrived.to_string()]);
    t.row(vec![
        "served on time".into(),
        stats.served_on_time.to_string(),
    ]);
    t.row(vec!["served late".into(), stats.served_late.to_string()]);
    t.row(vec!["dropped".into(), stats.dropped.to_string()]);
    t.row(vec!["violations".into(), stats.violations().to_string()]);
    let (fired, resolved) = alert_counts(events);
    if fired + resolved > 0 {
        t.row(vec!["alerts fired".into(), fired.to_string()]);
        t.row(vec!["alerts resolved".into(), resolved.to_string()]);
    }
    t.render()
}

/// `trace-query <file> alerts`: every burn-rate alert transition, in
/// time order, with its scope, severity, windows and burn rate.
fn render_alerts(events: &[TraceEvent]) -> String {
    let (fired, resolved) = alert_counts(events);
    if fired + resolved == 0 {
        return "no burn-rate alert events in trace (run with telemetry on: \
                --live, --telemetry-out or `telemetry = on`)\n"
            .to_string();
    }
    let mut out = format!("{fired} alert(s) fired, {resolved} resolved\n");
    for e in events {
        let (scope, severity, burn, long_secs, short_secs, what) = match &e.kind {
            EventKind::AlertFired {
                scope,
                severity,
                burn,
                long_secs,
                short_secs,
            } => (scope, severity, burn, long_secs, short_secs, "FIRED"),
            EventKind::AlertResolved {
                scope,
                severity,
                burn,
                long_secs,
                short_secs,
            } => (scope, severity, burn, long_secs, short_secs, "resolved"),
            _ => continue,
        };
        let _ = writeln!(
            out,
            "  {:>9} s  {:<8} {:<6} {:<13} burn {:>8}  ({}s long / {}s short)",
            fmt_f(e.at.as_secs_f64(), 1),
            what,
            severity.label(),
            scope.map_or("all families", |f| f.label()),
            fmt_f(*burn, 2),
            fmt_f(*long_secs, 0),
            fmt_f(*short_secs, 0),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_profiler::{DeviceId, ModelFamily, VariantId};
    use proteus_sim::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample() -> Vec<TraceEvent> {
        let variant = VariantId {
            family: ModelFamily::ResNet,
            index: 1,
        };
        vec![
            TraceEvent {
                at: t(0),
                kind: EventKind::Arrived {
                    query: 5,
                    family: ModelFamily::ResNet,
                },
            },
            TraceEvent {
                at: t(0),
                kind: EventKind::Enqueued {
                    query: 5,
                    device: DeviceId(2),
                    depth: 1,
                },
            },
            TraceEvent {
                at: t(40),
                kind: EventKind::BatchFormed {
                    device: DeviceId(2),
                    batch: 0,
                    queries: vec![5],
                },
            },
            TraceEvent {
                at: t(40),
                kind: EventKind::ExecStarted {
                    device: DeviceId(2),
                    batch: 0,
                    variant,
                    size: 1,
                    until: t(90),
                },
            },
            TraceEvent {
                at: t(90),
                kind: EventKind::ExecCompleted {
                    device: DeviceId(2),
                    batch: 0,
                },
            },
            TraceEvent {
                at: t(90),
                kind: EventKind::ServedLate {
                    query: 5,
                    latency: t(90),
                },
            },
        ]
    }

    #[test]
    fn query_report_reconstructs_lifecycle() {
        let out = render_query(&sample(), 5);
        assert!(out.contains("query 5: 6 events"));
        assert!(out.contains("enqueued on d2"));
        assert!(out.contains("served LATE"));
        assert!(out.contains("verdict: batch_wait"));
        assert!(render_query(&sample(), 99).contains("no events"));
    }

    #[test]
    fn blame_report_totals_add_up() {
        let out = render_blame(&sample());
        assert!(out.contains("1 SLO violations out of 1 queries"));
        assert!(out.contains("batch_wait"));
        assert!(out.contains("100.0"));
    }

    #[test]
    fn summary_counts_lifecycle() {
        let out = render_summary(&sample());
        assert!(out.contains("arrived"));
        assert!(out.contains("violations"));
        // No alert events -> no alert rows.
        assert!(!out.contains("alerts fired"));
    }

    fn alert_sample() -> Vec<TraceEvent> {
        use proteus_trace::AlertSeverity;
        let mut events = sample();
        events.push(TraceEvent {
            at: t(305_000),
            kind: EventKind::AlertFired {
                scope: Some(ModelFamily::Bert),
                severity: AlertSeverity::Page,
                burn: 9.125,
                long_secs: 60.0,
                short_secs: 10.0,
            },
        });
        events.push(TraceEvent {
            at: t(415_000),
            kind: EventKind::AlertResolved {
                scope: Some(ModelFamily::Bert),
                severity: AlertSeverity::Page,
                burn: 0.5,
                long_secs: 60.0,
                short_secs: 10.0,
            },
        });
        events.push(TraceEvent {
            at: t(620_000),
            kind: EventKind::AlertFired {
                scope: None,
                severity: AlertSeverity::Ticket,
                burn: 2.25,
                long_secs: 300.0,
                short_secs: 60.0,
            },
        });
        events
    }

    #[test]
    fn alerts_report_lists_transitions() {
        let out = render_alerts(&alert_sample());
        assert!(out.contains("2 alert(s) fired, 1 resolved"), "{out}");
        assert!(out.contains("FIRED"));
        assert!(out.contains("resolved"));
        assert!(out.contains("BERT"));
        assert!(out.contains("all families"));
        assert!(out.contains("9.12"));
        assert!(out.contains("60s long / 10s short"));
        // Alert-free traces point at how to enable telemetry.
        assert!(render_alerts(&sample()).contains("no burn-rate alert events"));
    }

    #[test]
    fn summary_includes_alert_counts_when_present() {
        let out = render_summary(&alert_sample());
        assert!(out.contains("alerts fired"));
        assert!(out.contains("alerts resolved"));
    }

    #[test]
    fn describe_renders_alert_events() {
        let events = alert_sample();
        let fired = describe(&events[events.len() - 3].kind);
        assert!(fired.contains("ALERT page fired for BERT"), "{fired}");
        assert!(fired.contains("burn 9.12"));
        let resolved = describe(&events[events.len() - 2].kind);
        assert!(
            resolved.contains("alert page resolved for BERT"),
            "{resolved}"
        );
    }
}
