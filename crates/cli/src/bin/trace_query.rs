//! `trace-query` — inspect a flight-recorder JSONL trace.
//!
//! ```sh
//! trace-query run.jsonl query 17     # one query's lifecycle, reconstructed
//! trace-query run.jsonl critpath 17  # its critical-path waterfall
//! trace-query run.jsonl flame        # collapsed-stack latency profile
//! trace-query run.jsonl blame        # who to blame for each SLO violation
//! trace-query run.jsonl summary      # lifecycle counts
//! trace-query run.jsonl alerts       # SLO burn-rate alert transitions
//! trace-query diff a.jsonl b.jsonl   # what changed between two runs
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use proteus_metrics::report::{fmt_f, json_escape, waterfall_bar, TextTable};
use proteus_trace::{
    blame, collapse_flame, diff_traces, parse_jsonl, query_lifecycle, span_tree, span_trees,
    BlameCause, BlameVerdict, CausalEdge, DiffReport, EventKind, LifecycleStats, Segment, SpanTree,
    TraceEvent,
};

const USAGE: &str = "\
usage: trace-query <trace.jsonl> query <id>     reconstruct one query's lifecycle
       trace-query <trace.jsonl> critpath <id>  critical-path waterfall of one query
       trace-query <trace.jsonl> flame          collapsed-stack profile (segment x family x device)
       trace-query <trace.jsonl> blame          attribute every SLO violation
           [--json]                             machine-readable output
           [--deny <cause>=<count>]...          exit 1 if a cause exceeds its count
       trace-query <trace.jsonl> summary        lifecycle counts
       trace-query <trace.jsonl> alerts         SLO burn-rate alert transitions
       trace-query diff <a.jsonl> <b.jsonl>     per-segment deltas, cause migrations,
           [--check]                            exit 1 on regression (new violations
           [--allow-new <n>]                    beyond --allow-new, or latency up more
           [--allow-regress-pct <p>]            than --allow-regress-pct percent)

Reads JSONL traces recorded with `proteus <config> --trace <path>`.";

/// Parsed flags (everything that is not a positional argument).
#[derive(Debug, Default)]
struct Opts {
    json: bool,
    check: bool,
    deny: Vec<(BlameCause, usize)>,
    allow_new: usize,
    allow_regress_pct: f64,
}

/// Splits argv into positionals and [`Opts`]. Returns an error message on
/// malformed flags.
fn parse_args(args: &[String]) -> Result<(Vec<String>, Opts), String> {
    let mut pos = Vec::new();
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--check" => opts.check = true,
            "--deny" => {
                let v = it.next().ok_or("--deny needs <cause>=<count>")?;
                let (cause, count) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--deny `{v}`: expected <cause>=<count>"))?;
                let cause = BlameCause::ALL
                    .into_iter()
                    .find(|c| c.label() == cause)
                    .ok_or_else(|| format!("--deny: unknown cause `{cause}`"))?;
                let count: usize = count
                    .parse()
                    .map_err(|_| format!("--deny `{v}`: bad count"))?;
                opts.deny.push((cause, count));
            }
            "--allow-new" => {
                let v = it.next().ok_or("--allow-new needs a number")?;
                opts.allow_new = v.parse().map_err(|_| format!("--allow-new: bad `{v}`"))?;
            }
            "--allow-regress-pct" => {
                let v = it.next().ok_or("--allow-regress-pct needs a number")?;
                opts.allow_regress_pct = v
                    .parse()
                    .map_err(|_| format!("--allow-regress-pct: bad `{v}`"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            _ => pos.push(a.clone()),
        }
    }
    Ok((pos, opts))
}

fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_jsonl(&text).map_err(|e| format!("`{path}`: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        None | Some("--help" | "-h")
    ) {
        eprintln!("{USAGE}");
        return ExitCode::from(if args.is_empty() { 2 } else { 0 });
    }
    let (pos, opts) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // `diff` is command-first (`trace-query diff a b`); everything else is
    // path-first (`trace-query run.jsonl blame`).
    let (path, command, rest) = if pos.first().map(String::as_str) == Some("diff") {
        match (pos.get(1), pos.get(2)) {
            (Some(a), Some(_)) => (a.clone(), "diff".to_string(), pos[2..].to_vec()),
            _ => {
                eprintln!("error: `diff` needs two trace paths\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match (pos.first(), pos.get(1)) {
            (Some(p), Some(c)) => (p.clone(), c.clone(), pos[2..].to_vec()),
            _ => {
                eprintln!("error: need a trace path and a command\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    };
    let events = match load_trace(&path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut code = ExitCode::SUCCESS;
    let report = match command.as_str() {
        "query" => {
            let Some(id) = rest.first().and_then(|s| s.parse::<u64>().ok()) else {
                eprintln!("error: `query` needs a numeric query id\n\n{USAGE}");
                return ExitCode::FAILURE;
            };
            render_query(&events, id)
        }
        "critpath" => {
            let Some(id) = rest.first().and_then(|s| s.parse::<u64>().ok()) else {
                eprintln!("error: `critpath` needs a numeric query id\n\n{USAGE}");
                return ExitCode::FAILURE;
            };
            render_critpath(&events, id)
        }
        "flame" => collapse_flame(&span_trees(&events)),
        "blame" => {
            let report = blame(&events);
            for &(cause, allowed) in &opts.deny {
                if report.count(cause) > allowed {
                    code = ExitCode::FAILURE;
                }
            }
            if opts.json {
                render_blame_json(&events, &opts)
            } else {
                render_blame(&events, &opts)
            }
        }
        "summary" => render_summary(&events),
        "alerts" => render_alerts(&events),
        "diff" => {
            let other_path = &rest[0];
            let other = match load_trace(other_path) {
                Ok(events) => events,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let d = diff_traces(&events, &other);
            if opts.check && d.regressed(opts.allow_new, opts.allow_regress_pct) {
                code = ExitCode::FAILURE;
            }
            render_diff(&d, &opts, code == ExitCode::FAILURE)
        }
        other => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // A closed pipe (`trace-query … | head`) is a normal way to consume the
    // per-violation listing, not an error.
    use std::io::Write as _;
    if let Err(e) = std::io::stdout().write_all(report.as_bytes()) {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("error: writing output: {e}");
            return ExitCode::FAILURE;
        }
    }
    code
}

/// Milliseconds with microsecond precision, the natural scale for SLOs.
fn ms(t: proteus_sim::SimTime) -> String {
    fmt_f(t.as_millis_f64(), 3)
}

/// One human-readable line per event kind.
fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::WorkerOnline {
            device,
            device_type,
        } => format!("worker {device} ({}) online", device_type.label()),
        EventKind::Arrived { query, family } => {
            format!("query {query} arrived (family {})", family.label())
        }
        EventKind::Routed { query, device } => format!("query {query} routed to {device}"),
        EventKind::Enqueued {
            query,
            device,
            depth,
            behind,
        } => match behind {
            Some(b) => {
                format!("query {query} enqueued on {device} (depth {depth}, behind batch {b})")
            }
            None => format!("query {query} enqueued on {device} (depth {depth})"),
        },
        EventKind::BatchFormed {
            device,
            batch,
            queries,
        } => format!("batch {batch} formed on {device} from queries {queries:?}"),
        EventKind::ExecStarted {
            device,
            batch,
            variant,
            size,
            until,
        } => format!(
            "batch {batch} ({variant} \u{00d7}{size}) executing on {device} until {} ms",
            ms(*until)
        ),
        EventKind::ExecCompleted { device, batch } => {
            format!("batch {batch} completed on {device}")
        }
        EventKind::ServedOnTime {
            query,
            latency,
            epoch,
        } => format!(
            "query {query} served on time (latency {} ms, plan epoch {epoch})",
            ms(*latency)
        ),
        EventKind::ServedLate {
            query,
            latency,
            epoch,
        } => format!(
            "query {query} served LATE (latency {} ms, plan epoch {epoch})",
            ms(*latency)
        ),
        EventKind::Dropped { query, reason } => {
            format!("query {query} DROPPED ({})", reason.label())
        }
        EventKind::ModelLoadStarted {
            device,
            variant,
            until,
        } => match variant {
            Some(v) => format!("{device} loading {v} until {} ms", ms(*until)),
            None => format!("{device} unloading until {} ms", ms(*until)),
        },
        EventKind::ModelLoadFinished { device } => format!("{device} load finished"),
        EventKind::ReplanTriggered { cause } => format!("replan triggered ({})", cause.label()),
        EventKind::PlanApplied { changed, shrink } => {
            format!("plan applied ({changed} devices changed, shrink {shrink})")
        }
        EventKind::SolveStats {
            nodes,
            pivots,
            warm_starts,
            wall_nanos,
        } => format!(
            "solver: {nodes} nodes, {pivots} pivots, {warm_starts} warm starts, {} ms wall",
            fmt_f(*wall_nanos as f64 / 1e6, 2)
        ),
        EventKind::AuditReport {
            violations,
            devices_checked,
            families_checked,
        } => format!(
            "plan audit: {violations} violation(s) over {devices_checked} devices, \
             {families_checked} families"
        ),
        EventKind::WorkerCrashed { device } => format!("{device} crashed"),
        EventKind::WorkerRecovered { device } => format!("{device} recovered"),
        EventKind::QueryRetried {
            query,
            from,
            attempt,
        } => format!("query {query} retried away from {from} (attempt {attempt})"),
        EventKind::LoadFailed {
            device,
            variant,
            attempt,
        } => match variant {
            Some(v) => format!("{device} load of {v} failed (attempt {attempt})"),
            None => format!("{device} unload failed (attempt {attempt})"),
        },
        EventKind::StragglerStarted { device, slowdown } => {
            format!("{device} straggling ({slowdown}x slower)")
        }
        EventKind::StragglerEnded { device } => format!("{device} back to nominal speed"),
        EventKind::AlertFired {
            scope,
            severity,
            burn,
            long_secs,
            short_secs,
        } => format!(
            "ALERT {} fired for {} (burn {} over {}s/{}s windows)",
            severity.label(),
            scope.map_or("all families", |f| f.label()),
            fmt_f(*burn, 2),
            fmt_f(*long_secs, 0),
            fmt_f(*short_secs, 0),
        ),
        EventKind::AlertResolved {
            scope,
            severity,
            burn,
            long_secs,
            short_secs,
        } => format!(
            "alert {} resolved for {} (burn {} over {}s/{}s windows)",
            severity.label(),
            scope.map_or("all families", |f| f.label()),
            fmt_f(*burn, 2),
            fmt_f(*long_secs, 0),
            fmt_f(*short_secs, 0),
        ),
        EventKind::SolveStarted { cause, until } => format!(
            "solve started ({}), plan commits at {} ms",
            cause.label(),
            ms(*until)
        ),
        EventKind::SolveComplete { cause } => {
            format!("solve complete ({}), new plan committing", cause.label())
        }
        EventKind::PlanDiscarded { cause, reason } => format!(
            "in-flight plan ({}) DISCARDED ({})",
            cause.label(),
            reason.label()
        ),
    }
}

/// `trace-query <file> query <id>`: lifecycle plus, for violations, the
/// blame verdict.
fn render_query(events: &[TraceEvent], id: u64) -> String {
    let life = query_lifecycle(events, id);
    if life.is_empty() {
        return format!("query {id}: no events in trace\n");
    }
    let mut out = format!("query {id}: {} events\n", life.len());
    let t0 = life[0].at;
    for e in &life {
        let _ = writeln!(
            out,
            "  {:>12}  +{:>10}  {}",
            format!("{} ms", ms(e.at)),
            format!("{} ms", ms(e.at.saturating_sub(t0))),
            describe(&e.kind)
        );
    }
    if let Some(v) = blame(events).verdicts.iter().find(|v| v.query == id) {
        let _ = writeln!(out, "verdict: {}", verdict_line(v));
    }
    out
}

fn verdict_line(v: &BlameVerdict) -> String {
    if v.cause == BlameCause::Shed {
        return "shed (rejected at admission)".to_string();
    }
    let mut line = format!(
        "{} (waited {} ms queueing, {} ms model-load, {} ms batch-wait)",
        v.cause.label(),
        ms(v.queueing),
        ms(v.model_load),
        ms(v.batch_wait)
    );
    if v.stale_plan > proteus_sim::SimTime::ZERO {
        let _ = write!(line, " [{} ms under a stale plan]", ms(v.stale_plan));
    }
    line
}

/// `trace-query <file> critpath <id>`: the query's span tree as a
/// waterfall, with per-segment totals and causal edges.
fn render_critpath(events: &[TraceEvent], id: u64) -> String {
    let Some(tree) = span_tree(events, id) else {
        return format!("query {id}: no terminal event in trace\n");
    };
    render_tree(&tree)
}

fn render_tree(tree: &SpanTree) -> String {
    const WIDTH: usize = 48;
    let outcome = match tree.outcome {
        proteus_trace::Outcome::OnTime => "served on time".to_string(),
        proteus_trace::Outcome::Late => "served LATE".to_string(),
        proteus_trace::Outcome::Dropped(r) => format!("DROPPED ({})", r.label()),
    };
    let mut out = format!(
        "query {}: {outcome}, {} ms end-to-end (family {}, device {}, plan epoch {})\n",
        tree.query,
        ms(tree.observed()),
        tree.family.map_or("?", |f| f.label()),
        tree.device.map_or("-".to_string(), |d| d.to_string()),
        tree.epoch
    );
    let total = tree.observed().as_nanos();
    if total == 0 {
        out.push_str("  (zero-length timeline: rejected at admission)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  waterfall ({WIDTH} cols = {} ms):",
        ms(tree.observed())
    );
    for span in &tree.spans {
        let f0 = span.start.saturating_sub(tree.start).as_nanos() as f64 / total as f64;
        let f1 = span.end.saturating_sub(tree.start).as_nanos() as f64 / total as f64;
        let _ = writeln!(
            out,
            "    {:<10} {:>12} ms  {:>12} ms  [{}]",
            span.segment.label(),
            ms(span.start.saturating_sub(tree.start)),
            ms(span.dur()),
            waterfall_bar(f0, f1, WIDTH)
        );
    }
    let mut parts = Vec::new();
    for s in Segment::ALL {
        let d = tree.segment_total(s);
        if d > proteus_sim::SimTime::ZERO {
            parts.push(format!(
                "{} {} ms ({}%)",
                s.label(),
                ms(d),
                fmt_f(d.as_nanos() as f64 / total as f64 * 100.0, 1)
            ));
        }
    }
    let _ = writeln!(out, "  segments: {}", parts.join(" + "));
    let gap = tree.invariant_gap();
    let _ = writeln!(
        out,
        "  invariant: segments sum to observed latency ({})",
        if gap == 0 {
            "OK".to_string()
        } else {
            format!("VIOLATED, gap {gap} ns")
        }
    );
    let _ = writeln!(
        out,
        "  critical path dominated by {}",
        tree.dominant().label()
    );
    if !tree.edges.is_empty() {
        out.push_str("  causes:\n");
        for edge in &tree.edges {
            let _ = writeln!(out, "    {}", describe_edge(edge));
        }
    }
    out
}

fn describe_edge(edge: &CausalEdge) -> String {
    match edge {
        CausalEdge::QueuedBehind { batch } => format!("queued behind batch {batch}"),
        CausalEdge::WaitedOnLoad {
            device,
            variant,
            stall,
        } => match variant {
            Some(v) => format!("waited {} ms on load of {v} on {device}", ms(*stall)),
            None => format!("waited {} ms on an unload on {device}", ms(*stall)),
        },
        CausalEdge::ServedUnderStalePlan { epoch, overlap } => format!(
            "waited {} ms idle under an open solve window; served under plan epoch {epoch}",
            ms(*overlap)
        ),
        CausalEdge::RetriedAfterCrash { device, attempt } => {
            format!("retried after crash of {device} (attempt {attempt})")
        }
    }
}

/// `trace-query diff <a> <b>`: what changed between two runs.
fn render_diff(d: &DiffReport, opts: &Opts, failed: bool) -> String {
    let mut out = format!(
        "aligned {} queries ({} only in A, {} only in B)\n",
        d.aligned, d.only_a, d.only_b
    );
    let (ma, mb) = d.mean_latency();
    let _ = writeln!(
        out,
        "end-to-end: A mean {} ms, B mean {} ms ({}{}%)",
        ms(ma),
        ms(mb),
        if d.regress_pct() >= 0.0 { "+" } else { "" },
        fmt_f(d.regress_pct(), 2)
    );
    let mut t = TextTable::new(vec!["segment", "A total ms", "B total ms", "delta ms"]);
    for s in &d.segments {
        if s.a_nanos == 0 && s.b_nanos == 0 {
            continue;
        }
        t.row(vec![
            s.segment.label().into(),
            fmt_f(s.a_nanos as f64 / 1e6, 3),
            fmt_f(s.b_nanos as f64 / 1e6, 3),
            fmt_f(s.delta_nanos() as f64 / 1e6, 3),
        ]);
    }
    if !t.is_empty() {
        out.push_str(&t.render());
    }
    let _ = writeln!(
        out,
        "violations: {} new, {} vanished",
        d.new_violations.len(),
        d.vanished_violations.len()
    );
    let preview = |ids: &[u64]| -> String {
        let shown: Vec<String> = ids.iter().take(10).map(u64::to_string).collect();
        let mut s = shown.join(", ");
        if ids.len() > 10 {
            let _ = write!(s, ", … ({} total)", ids.len());
        }
        s
    };
    if !d.new_violations.is_empty() {
        let _ = writeln!(out, "  new: {}", preview(&d.new_violations));
    }
    if !d.vanished_violations.is_empty() {
        let _ = writeln!(out, "  vanished: {}", preview(&d.vanished_violations));
    }
    if !d.migrations.is_empty() {
        out.push_str("cause migrations:\n");
        for m in &d.migrations {
            let _ = writeln!(out, "  {} -> {}: {}", m.from.label(), m.to.label(), m.count);
        }
    }
    if opts.check {
        let _ = writeln!(
            out,
            "--check: {} (thresholds: {} new violation(s), {}% latency regression)",
            if failed { "FAIL" } else { "OK" },
            opts.allow_new,
            fmt_f(opts.allow_regress_pct, 1)
        );
    }
    out
}

/// `trace-query <file> blame --json`: machine-readable verdicts for CI.
fn render_blame_json(events: &[TraceEvent], opts: &Opts) -> String {
    let stats = LifecycleStats::from_events(events);
    let report = blame(events);
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"arrived\":{},\"violations\":{},\"stale_affected\":{},\"counts\":{{",
        stats.arrived,
        report.total(),
        report.stale_affected()
    );
    for (i, cause) in BlameCause::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{}",
            json_escape(cause.label()),
            report.count(cause)
        );
    }
    out.push_str("},\"deny\":[");
    for (i, &(cause, allowed)) in opts.deny.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"cause\":\"{}\",\"allowed\":{},\"actual\":{},\"breached\":{}}}",
            json_escape(cause.label()),
            allowed,
            report.count(cause),
            report.count(cause) > allowed
        );
    }
    out.push_str("],\"verdicts\":[");
    for (i, v) in report.verdicts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"query\":{},\"at\":{},\"cause\":\"{}\",\"queueing\":{},\"model_load\":{},\
             \"batch_wait\":{},\"stale_plan\":{}}}",
            v.query,
            v.at.as_nanos(),
            json_escape(v.cause.label()),
            v.queueing.as_nanos(),
            v.model_load.as_nanos(),
            v.batch_wait.as_nanos(),
            v.stale_plan.as_nanos()
        );
    }
    out.push_str("]}\n");
    out
}

/// `trace-query <file> blame`: per-cause counts, then every verdict.
fn render_blame(events: &[TraceEvent], opts: &Opts) -> String {
    let stats = LifecycleStats::from_events(events);
    let report = blame(events);
    let mut out = format!(
        "{} SLO violations out of {} queries\n",
        report.total(),
        stats.arrived
    );
    for &(cause, allowed) in &opts.deny {
        let n = report.count(cause);
        if n > allowed {
            let _ = writeln!(
                out,
                "DENY: {} count {} exceeds threshold {}",
                cause.label(),
                n,
                allowed
            );
        }
    }
    if report.total() == 0 {
        return out;
    }
    let mut t = TextTable::new(vec!["cause", "violations", "share (%)"]);
    for cause in BlameCause::ALL {
        let n = report.count(cause);
        if n > 0 {
            t.row(vec![
                cause.label().into(),
                n.to_string(),
                fmt_f(n as f64 / report.total() as f64 * 100.0, 1),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    let stale = report.stale_affected();
    if stale > 0 {
        let _ = writeln!(
            out,
            "{stale} violation(s) overlapped an open solve window (stale plan); \
             overlap shown per verdict below"
        );
    }
    for v in &report.verdicts {
        let _ = writeln!(
            out,
            "  query {:>6} at {:>12} ms: {}",
            v.query,
            ms(v.at),
            verdict_line(v)
        );
    }
    out
}

/// Counts alert transitions in a trace: `(fired, resolved)`.
fn alert_counts(events: &[TraceEvent]) -> (u64, u64) {
    let mut fired = 0;
    let mut resolved = 0;
    for e in events {
        match e.kind {
            EventKind::AlertFired { .. } => fired += 1,
            EventKind::AlertResolved { .. } => resolved += 1,
            _ => {}
        }
    }
    (fired, resolved)
}

/// `trace-query <file> summary`: whole-trace lifecycle counts.
fn render_summary(events: &[TraceEvent]) -> String {
    let stats = LifecycleStats::from_events(events);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec!["events".into(), events.len().to_string()]);
    t.row(vec!["arrived".into(), stats.arrived.to_string()]);
    t.row(vec![
        "served on time".into(),
        stats.served_on_time.to_string(),
    ]);
    t.row(vec!["served late".into(), stats.served_late.to_string()]);
    t.row(vec!["dropped".into(), stats.dropped.to_string()]);
    t.row(vec!["violations".into(), stats.violations().to_string()]);
    let (fired, resolved) = alert_counts(events);
    if fired + resolved > 0 {
        t.row(vec!["alerts fired".into(), fired.to_string()]);
        t.row(vec!["alerts resolved".into(), resolved.to_string()]);
    }
    t.render()
}

/// `trace-query <file> alerts`: every burn-rate alert transition, in
/// time order, with its scope, severity, windows and burn rate.
fn render_alerts(events: &[TraceEvent]) -> String {
    let (fired, resolved) = alert_counts(events);
    if fired + resolved == 0 {
        return "no burn-rate alert events in trace (run with telemetry on: \
                --live, --telemetry-out or `telemetry = on`)\n"
            .to_string();
    }
    let mut out = format!("{fired} alert(s) fired, {resolved} resolved\n");
    for e in events {
        let (scope, severity, burn, long_secs, short_secs, what) = match &e.kind {
            EventKind::AlertFired {
                scope,
                severity,
                burn,
                long_secs,
                short_secs,
            } => (scope, severity, burn, long_secs, short_secs, "FIRED"),
            EventKind::AlertResolved {
                scope,
                severity,
                burn,
                long_secs,
                short_secs,
            } => (scope, severity, burn, long_secs, short_secs, "resolved"),
            _ => continue,
        };
        let _ = writeln!(
            out,
            "  {:>9} s  {:<8} {:<6} {:<13} burn {:>8}  ({}s long / {}s short)",
            fmt_f(e.at.as_secs_f64(), 1),
            what,
            severity.label(),
            scope.map_or("all families", |f| f.label()),
            fmt_f(*burn, 2),
            fmt_f(*long_secs, 0),
            fmt_f(*short_secs, 0),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_profiler::{DeviceId, ModelFamily, VariantId};
    use proteus_sim::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample() -> Vec<TraceEvent> {
        let variant = VariantId {
            family: ModelFamily::ResNet,
            index: 1,
        };
        vec![
            TraceEvent {
                at: t(0),
                kind: EventKind::Arrived {
                    query: 5,
                    family: ModelFamily::ResNet,
                },
            },
            TraceEvent {
                at: t(0),
                kind: EventKind::Enqueued {
                    query: 5,
                    device: DeviceId(2),
                    depth: 1,
                    behind: None,
                },
            },
            TraceEvent {
                at: t(40),
                kind: EventKind::BatchFormed {
                    device: DeviceId(2),
                    batch: 0,
                    queries: vec![5],
                },
            },
            TraceEvent {
                at: t(40),
                kind: EventKind::ExecStarted {
                    device: DeviceId(2),
                    batch: 0,
                    variant,
                    size: 1,
                    until: t(90),
                },
            },
            TraceEvent {
                at: t(90),
                kind: EventKind::ExecCompleted {
                    device: DeviceId(2),
                    batch: 0,
                },
            },
            TraceEvent {
                at: t(90),
                kind: EventKind::ServedLate {
                    query: 5,
                    latency: t(90),
                    epoch: 0,
                },
            },
        ]
    }

    #[test]
    fn query_report_reconstructs_lifecycle() {
        let out = render_query(&sample(), 5);
        assert!(out.contains("query 5: 6 events"));
        assert!(out.contains("enqueued on d2"));
        assert!(out.contains("served LATE"));
        assert!(out.contains("verdict: batch_wait"));
        assert!(render_query(&sample(), 99).contains("no events"));
    }

    #[test]
    fn blame_report_totals_add_up() {
        let out = render_blame(&sample(), &Opts::default());
        assert!(out.contains("1 SLO violations out of 1 queries"));
        assert!(out.contains("batch_wait"));
        assert!(out.contains("100.0"));
    }

    #[test]
    fn blame_deny_thresholds_are_reported() {
        let opts = Opts {
            deny: vec![(BlameCause::BatchWait, 0), (BlameCause::Queueing, 5)],
            ..Opts::default()
        };
        let out = render_blame(&sample(), &opts);
        assert!(out.contains("DENY: batch_wait count 1 exceeds threshold 0"));
        assert!(!out.contains("DENY: queueing"));
    }

    #[test]
    fn blame_json_is_machine_readable() {
        let opts = Opts {
            deny: vec![(BlameCause::BatchWait, 0)],
            ..Opts::default()
        };
        let out = render_blame_json(&sample(), &opts);
        assert!(
            out.starts_with('{') && out.trim_end().ends_with('}'),
            "{out}"
        );
        assert!(out.contains("\"violations\":1"));
        assert!(out.contains("\"batch_wait\":1"));
        assert!(out.contains("\"breached\":true"));
        assert!(out.contains("\"cause\":\"batch_wait\""));
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn parse_args_splits_flags_and_positionals() {
        let argv: Vec<String> = ["a.jsonl", "blame", "--json", "--deny", "shed=3"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (pos, opts) = parse_args(&argv).unwrap();
        assert_eq!(pos, vec!["a.jsonl", "blame"]);
        assert!(opts.json);
        assert_eq!(opts.deny, vec![(BlameCause::Shed, 3)]);
        assert!(parse_args(&["--deny".to_string()]).is_err());
        assert!(parse_args(&["--deny".to_string(), "sunspots=1".to_string()]).is_err());
        assert!(parse_args(&["--deny".to_string(), "shed".to_string()]).is_err());
        assert!(parse_args(&["--wat".to_string()]).is_err());
        let argv: Vec<String> = ["diff", "a", "b", "--check", "--allow-new", "2"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (pos, opts) = parse_args(&argv).unwrap();
        assert_eq!(pos, vec!["diff", "a", "b"]);
        assert!(opts.check);
        assert_eq!(opts.allow_new, 2);
    }

    #[test]
    fn critpath_renders_a_waterfall() {
        let out = render_critpath(&sample(), 5);
        assert!(out.contains("query 5: served LATE"), "{out}");
        assert!(out.contains("waterfall"));
        assert!(out.contains("batch_wait"));
        assert!(out.contains("exec"));
        assert!(out.contains("segments sum to observed latency (OK)"));
        assert!(out.contains("critical path dominated by exec"));
        assert!(render_critpath(&sample(), 99).contains("no terminal event"));
    }

    #[test]
    fn diff_of_identical_runs_is_clean() {
        let d = diff_traces(&sample(), &sample());
        let opts = Opts {
            check: true,
            ..Opts::default()
        };
        let out = render_diff(&d, &opts, false);
        assert!(out.contains("aligned 1 queries"), "{out}");
        assert!(out.contains("+0.00%"));
        assert!(out.contains("violations: 0 new, 0 vanished"));
        assert!(out.contains("--check: OK"));
    }

    #[test]
    fn summary_counts_lifecycle() {
        let out = render_summary(&sample());
        assert!(out.contains("arrived"));
        assert!(out.contains("violations"));
        // No alert events -> no alert rows.
        assert!(!out.contains("alerts fired"));
    }

    fn alert_sample() -> Vec<TraceEvent> {
        use proteus_trace::AlertSeverity;
        let mut events = sample();
        events.push(TraceEvent {
            at: t(305_000),
            kind: EventKind::AlertFired {
                scope: Some(ModelFamily::Bert),
                severity: AlertSeverity::Page,
                burn: 9.125,
                long_secs: 60.0,
                short_secs: 10.0,
            },
        });
        events.push(TraceEvent {
            at: t(415_000),
            kind: EventKind::AlertResolved {
                scope: Some(ModelFamily::Bert),
                severity: AlertSeverity::Page,
                burn: 0.5,
                long_secs: 60.0,
                short_secs: 10.0,
            },
        });
        events.push(TraceEvent {
            at: t(620_000),
            kind: EventKind::AlertFired {
                scope: None,
                severity: AlertSeverity::Ticket,
                burn: 2.25,
                long_secs: 300.0,
                short_secs: 60.0,
            },
        });
        events
    }

    #[test]
    fn alerts_report_lists_transitions() {
        let out = render_alerts(&alert_sample());
        assert!(out.contains("2 alert(s) fired, 1 resolved"), "{out}");
        assert!(out.contains("FIRED"));
        assert!(out.contains("resolved"));
        assert!(out.contains("BERT"));
        assert!(out.contains("all families"));
        assert!(out.contains("9.12"));
        assert!(out.contains("60s long / 10s short"));
        // Alert-free traces point at how to enable telemetry.
        assert!(render_alerts(&sample()).contains("no burn-rate alert events"));
    }

    #[test]
    fn summary_includes_alert_counts_when_present() {
        let out = render_summary(&alert_sample());
        assert!(out.contains("alerts fired"));
        assert!(out.contains("alerts resolved"));
    }

    #[test]
    fn describe_renders_alert_events() {
        let events = alert_sample();
        let fired = describe(&events[events.len() - 3].kind);
        assert!(fired.contains("ALERT page fired for BERT"), "{fired}");
        assert!(fired.contains("burn 9.12"));
        let resolved = describe(&events[events.len() - 2].kind);
        assert!(
            resolved.contains("alert page resolved for BERT"),
            "{resolved}"
        );
    }
}
