//! Config-driven experiment runner, mirroring the Proteus artifact.
//!
//! The paper's artifact (Appendix A) runs the simulator from configuration
//! files that select the workload trace, the resource-allocation algorithm
//! (`ilp`, `infaas_v2`, `clipper`, `sommelier`) and the batching algorithm
//! (`accscale`, `aimd`, `nexus`). This crate provides the same workflow:
//!
//! ```sh
//! proteus experiment.conf
//! proteus --print-default-config
//! ```
//!
//! See [`config::ExperimentConfig`] for the file format and [`run_experiment`]
//! for the programmatic entry point.

#![forbid(unsafe_code)]

pub mod config;
mod runner;

pub use runner::{fingerprint, run_experiment, run_experiment_traced, ExperimentOutput};
