//! The experiment configuration format.
//!
//! The paper's artifact drives its simulator with JSON configuration files
//! naming the workload trace, the resource-allocation algorithm
//! (`ilp`, `infaas_v2`, `clipper`, `sommelier`) and the batching algorithm
//! (`accscale`, `aimd`, `nexus`) plus hyper-parameters (A.5/A.7). This
//! module provides the same knobs through a minimal `key = value` file
//! format (one assignment per line, `#` comments), avoiding a JSON
//! dependency.
//!
//! # Examples
//!
//! ```
//! use proteus_cli::config::ExperimentConfig;
//!
//! let config: ExperimentConfig = "
//!     trace = diurnal
//!     peak_qps = 800
//!     model_allocation = ilp
//!     batching = accscale
//! "
//! .parse()
//! .unwrap();
//! assert_eq!(config.allocation, proteus_cli::config::AllocationKind::Ilp);
//! ```

use std::fmt;
use std::str::FromStr;

use proteus_sim::FaultSchedule;

/// Which demand trace to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Twitter-like diurnal trace (§6.1.3).
    Diurnal,
    /// Macro-scale burst trace (§6.3).
    Bursty,
    /// Constant demand.
    Flat,
}

/// Which resource-allocation algorithm runs in the controller
/// (the artifact's `model_allocation` field, same names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationKind {
    /// Proteus' MILP (`ilp`).
    Ilp,
    /// INFaaS-Accuracy (`infaas_v2`).
    InfaasV2,
    /// Clipper high-throughput (`clipper_ht`) — plain `clipper` maps here.
    ClipperHt,
    /// Clipper high-accuracy (`clipper_ha`).
    ClipperHa,
    /// Sommelier (`sommelier`).
    Sommelier,
}

/// Which batching algorithm the workers run (the artifact's `batching`
/// field, same names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchingKind {
    /// Proteus adaptive batching (`accscale`).
    AccScale,
    /// Clipper AIMD (`aimd`).
    Aimd,
    /// Nexus early-drop (`nexus`).
    Nexus,
    /// Fixed batch size (`static:N`).
    Static(u32),
}

/// What the runner prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Headline metrics table.
    Summary,
    /// Per-second CSV timeseries.
    Timeseries,
    /// Per-family breakdown table.
    Families,
    /// Response-latency percentiles (aggregate and per family).
    Latency,
}

/// A parsed experiment configuration with artifact-compatible defaults
/// (`ilp` + `accscale`, β = 1.05, 30 s invocation period).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Demand trace shape.
    pub trace: TraceKind,
    /// Trace length in seconds.
    pub trace_secs: u32,
    /// Off-peak demand, QPS.
    pub base_qps: f64,
    /// Peak demand, QPS.
    pub peak_qps: f64,
    /// RNG seed.
    pub seed: u64,
    /// Resource-allocation algorithm.
    pub allocation: AllocationKind,
    /// Batching algorithm.
    pub batching: BatchingKind,
    /// SLO multiplier (§6.6).
    pub slo_multiplier: f64,
    /// Cluster composition: CPU, GTX 1080 Ti, V100 counts.
    pub cluster: (u32, u32, u32),
    /// Resource Manager invocation period, seconds.
    pub realloc_period_secs: f64,
    /// Demand headroom β (artifact default 1.05).
    pub beta: f64,
    /// Control-plane solve latency: how long after a replan trigger the
    /// new plan commits (`solve_latency = zero | model | fixed:SECS`, or
    /// the `--solve-latency` flag). `zero` preserves the legacy
    /// solve-and-apply-in-the-same-instant behaviour.
    pub solve_latency: proteus_core::SolveLatency,
    /// Output format.
    pub output: OutputKind,
    /// Run the independent plan auditor on every replan and DES-invariant
    /// checks at end of run, even in release builds (`--audit` flag or
    /// `audit = true`).
    pub audit: bool,
    /// Injected fault schedule (`faults = crash@30:2; recover@90:2; ...`
    /// or the `--faults` flag). Empty by default.
    pub faults: FaultSchedule,
    /// Enable the live telemetry plane (`telemetry = on`). Also forced on
    /// by the `--live`, `--telemetry-out` and `--telemetry-http` flags.
    pub telemetry: bool,
    /// Telemetry sliding-window span, seconds.
    pub telemetry_window_secs: f64,
    /// Telemetry window advance step, seconds.
    pub telemetry_step_secs: f64,
    /// On-time SLO objective for burn-rate alerting, in `(0, 1)`.
    pub telemetry_objective: f64,
    /// Redraw the ANSI dashboard on stderr every window (`--live`).
    pub live: bool,
    /// Append one Prometheus text-format page per window to this file
    /// (`--telemetry-out`).
    pub telemetry_out: Option<String>,
    /// Serve the latest page on `127.0.0.1:port` (`--telemetry-http`).
    pub telemetry_http: Option<u16>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            trace: TraceKind::Diurnal,
            trace_secs: 24 * 60,
            base_qps: 200.0,
            peak_qps: 1000.0,
            seed: 42,
            allocation: AllocationKind::Ilp,
            batching: BatchingKind::AccScale,
            slo_multiplier: 2.0,
            cluster: (20, 10, 10),
            realloc_period_secs: 30.0,
            beta: 1.05,
            solve_latency: proteus_core::SolveLatency::Zero,
            output: OutputKind::Summary,
            audit: false,
            faults: FaultSchedule::default(),
            telemetry: false,
            telemetry_window_secs: 10.0,
            telemetry_step_secs: 1.0,
            telemetry_objective: 0.95,
            live: false,
            telemetry_out: None,
            telemetry_http: None,
        }
    }
}

/// A configuration parse failure: the offending line and a reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for ExperimentConfig {
    type Err = ParseConfigError;

    fn from_str(text: &str) -> Result<Self, ParseConfigError> {
        let mut config = ExperimentConfig::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let Some((key, value)) = content.split_once('=') else {
                return Err(ParseConfigError {
                    line,
                    reason: format!("expected `key = value`, got `{content}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let bad = |reason: String| ParseConfigError { line, reason };
            let num = |v: &str| -> Result<f64, ParseConfigError> {
                v.parse().map_err(|_| bad(format!("`{v}` is not a number")))
            };
            match key {
                "trace" => {
                    config.trace = match value {
                        "diurnal" => TraceKind::Diurnal,
                        "bursty" => TraceKind::Bursty,
                        "flat" => TraceKind::Flat,
                        other => return Err(bad(format!("unknown trace `{other}`"))),
                    }
                }
                "trace_secs" => config.trace_secs = num(value)? as u32,
                "base_qps" => config.base_qps = num(value)?,
                "peak_qps" => config.peak_qps = num(value)?,
                "seed" => config.seed = num(value)? as u64,
                "model_allocation" | "allocator" => {
                    config.allocation = match value {
                        "ilp" => AllocationKind::Ilp,
                        "infaas_v2" | "infaas" => AllocationKind::InfaasV2,
                        "clipper" | "clipper_ht" => AllocationKind::ClipperHt,
                        "clipper_ha" => AllocationKind::ClipperHa,
                        "sommelier" => AllocationKind::Sommelier,
                        other => return Err(bad(format!("unknown allocation `{other}`"))),
                    }
                }
                "batching" => {
                    config.batching = if let Some(n) = value.strip_prefix("static:") {
                        let n: u32 = n
                            .parse()
                            .map_err(|_| bad(format!("bad static batch size `{n}`")))?;
                        if n == 0 {
                            return Err(bad("static batch size must be >= 1".into()));
                        }
                        BatchingKind::Static(n)
                    } else {
                        match value {
                            "accscale" => BatchingKind::AccScale,
                            "aimd" => BatchingKind::Aimd,
                            "nexus" => BatchingKind::Nexus,
                            other => return Err(bad(format!("unknown batching `{other}`"))),
                        }
                    }
                }
                "slo_multiplier" => config.slo_multiplier = num(value)?,
                "cluster" => {
                    let parts: Vec<&str> = value.split(',').map(str::trim).collect();
                    if parts.len() != 3 {
                        return Err(bad("cluster needs `cpu,gtx,v100` counts".into()));
                    }
                    let parse = |v: &str| -> Result<u32, ParseConfigError> {
                        v.parse()
                            .map_err(|_| bad(format!("bad device count `{v}`")))
                    };
                    config.cluster = (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
                }
                "realloc_period" | "realloc_period_secs" => {
                    config.realloc_period_secs = num(value)?
                }
                "beta" => config.beta = num(value)?,
                "solve_latency" => {
                    config.solve_latency = value.parse().map_err(|e: String| bad(e))?;
                }
                "faults" => {
                    config.faults = value
                        .parse()
                        .map_err(|e: proteus_sim::ParseFaultError| bad(e.to_string()))?;
                }
                "audit" => {
                    config.audit = match value {
                        "true" | "on" | "1" => true,
                        "false" | "off" | "0" => false,
                        other => return Err(bad(format!("bad audit value `{other}`"))),
                    }
                }
                "telemetry" => {
                    config.telemetry = match value {
                        "true" | "on" | "1" => true,
                        "false" | "off" | "0" => false,
                        other => return Err(bad(format!("bad telemetry value `{other}`"))),
                    }
                }
                "telemetry_window" | "telemetry_window_secs" => {
                    config.telemetry_window_secs = num(value)?
                }
                "telemetry_step" | "telemetry_step_secs" => {
                    config.telemetry_step_secs = num(value)?
                }
                "telemetry_objective" => config.telemetry_objective = num(value)?,
                "output" => {
                    config.output = match value {
                        "summary" => OutputKind::Summary,
                        "timeseries" => OutputKind::Timeseries,
                        "families" => OutputKind::Families,
                        "latency" => OutputKind::Latency,
                        other => return Err(bad(format!("unknown output `{other}`"))),
                    }
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }
        config
            .validate()
            .map_err(|reason| ParseConfigError { line: 0, reason })?;
        Ok(config)
    }
}

impl ExperimentConfig {
    /// Semantic validation beyond syntax.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated requirement.
    pub fn validate(&self) -> Result<(), String> {
        if self.trace_secs == 0 {
            return Err("trace_secs must be positive".into());
        }
        if self.base_qps < 0.0 || self.peak_qps < self.base_qps {
            return Err(format!(
                "need 0 <= base_qps ({}) <= peak_qps ({})",
                self.base_qps, self.peak_qps
            ));
        }
        if self.slo_multiplier <= 0.0 {
            return Err("slo_multiplier must be positive".into());
        }
        if self.cluster == (0, 0, 0) {
            return Err("cluster must contain at least one device".into());
        }
        if self.realloc_period_secs <= 0.0 {
            return Err("realloc_period must be positive".into());
        }
        if self.beta < 1.0 {
            return Err("beta must be >= 1.0".into());
        }
        if self.telemetry_step_secs <= 0.0 || self.telemetry_window_secs < self.telemetry_step_secs
        {
            return Err(format!(
                "need 0 < telemetry_step ({}) <= telemetry_window ({})",
                self.telemetry_step_secs, self.telemetry_window_secs
            ));
        }
        if !(0.0 < self.telemetry_objective && self.telemetry_objective < 1.0) {
            return Err("telemetry_objective must be in (0, 1)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_artifact() {
        let c = ExperimentConfig::default();
        assert_eq!(c.allocation, AllocationKind::Ilp);
        assert_eq!(c.batching, BatchingKind::AccScale);
        assert_eq!(c.beta, 1.05);
        assert_eq!(c.cluster, (20, 10, 10));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn parses_full_config() {
        let c: ExperimentConfig = "
            # a comment
            trace = bursty
            trace_secs = 600
            base_qps = 100   # inline comment
            peak_qps = 900
            seed = 7
            model_allocation = infaas_v2
            batching = nexus
            slo_multiplier = 1.5
            cluster = 4, 2, 2
            realloc_period = 10
            beta = 1.1
            output = timeseries
        "
        .parse()
        .unwrap();
        assert_eq!(c.trace, TraceKind::Bursty);
        assert_eq!(c.trace_secs, 600);
        assert_eq!(c.base_qps, 100.0);
        assert_eq!(c.allocation, AllocationKind::InfaasV2);
        assert_eq!(c.batching, BatchingKind::Nexus);
        assert_eq!(c.cluster, (4, 2, 2));
        assert_eq!(c.output, OutputKind::Timeseries);
    }

    #[test]
    fn artifact_algorithm_names_resolve() {
        for (name, kind) in [
            ("ilp", AllocationKind::Ilp),
            ("infaas_v2", AllocationKind::InfaasV2),
            ("clipper", AllocationKind::ClipperHt),
            ("sommelier", AllocationKind::Sommelier),
        ] {
            let c: ExperimentConfig = format!("model_allocation = {name}").parse().unwrap();
            assert_eq!(c.allocation, kind, "{name}");
        }
        for (name, kind) in [
            ("accscale", BatchingKind::AccScale),
            ("aimd", BatchingKind::Aimd),
            ("nexus", BatchingKind::Nexus),
            ("static:4", BatchingKind::Static(4)),
        ] {
            let c: ExperimentConfig = format!("batching = {name}").parse().unwrap();
            assert_eq!(c.batching, kind, "{name}");
        }
    }

    #[test]
    fn parses_fault_schedule() {
        let c: ExperimentConfig = "faults = crash@30:2; recover@90:2; loadfail@0.1"
            .parse()
            .unwrap();
        assert_eq!(c.faults.events.len(), 2);
        assert_eq!(c.faults.load_failure_p, 0.1);
        let err = "faults = crash@30".parse::<ExperimentConfig>().unwrap_err();
        assert!(err.reason.contains("bad fault spec"), "{}", err.reason);
        // Default: no faults.
        assert!(ExperimentConfig::default().faults.is_empty());
    }

    #[test]
    fn parses_telemetry_keys() {
        let c: ExperimentConfig = "
            telemetry = on
            telemetry_window = 20
            telemetry_step = 2
            telemetry_objective = 0.99
        "
        .parse()
        .unwrap();
        assert!(c.telemetry);
        assert_eq!(c.telemetry_window_secs, 20.0);
        assert_eq!(c.telemetry_step_secs, 2.0);
        assert_eq!(c.telemetry_objective, 0.99);
        // Off by default, and output destinations are flag-only.
        let d = ExperimentConfig::default();
        assert!(!d.telemetry && !d.live);
        assert!(d.telemetry_out.is_none() && d.telemetry_http.is_none());

        let err = "telemetry = maybe".parse::<ExperimentConfig>().unwrap_err();
        assert!(err.reason.contains("telemetry"));
        let err = "telemetry_step = 5\ntelemetry_window = 2"
            .parse::<ExperimentConfig>()
            .unwrap_err();
        assert!(err.reason.contains("telemetry_step"));
        let err = "telemetry_objective = 1.5"
            .parse::<ExperimentConfig>()
            .unwrap_err();
        assert!(err.reason.contains("telemetry_objective"));
    }

    #[test]
    fn parses_solve_latency() {
        use proteus_core::SolveLatency;
        // Legacy instant-commit behaviour is the default.
        assert_eq!(
            ExperimentConfig::default().solve_latency,
            SolveLatency::Zero
        );
        for (text, want) in [
            ("solve_latency = zero", SolveLatency::Zero),
            ("solve_latency = model", SolveLatency::Model),
            ("solve_latency = fixed:4.2", SolveLatency::Fixed(4.2)),
        ] {
            let c: ExperimentConfig = text.parse().unwrap();
            assert_eq!(c.solve_latency, want, "{text}");
        }
        let err = "solve_latency = warp"
            .parse::<ExperimentConfig>()
            .unwrap_err();
        assert!(err.reason.contains("solve latency"), "{}", err.reason);
        let err = "solve_latency = fixed:-1"
            .parse::<ExperimentConfig>()
            .unwrap_err();
        assert!(err.reason.contains("positive"), "{}", err.reason);
    }

    #[test]
    fn rejects_unknown_keys_and_values() {
        let err = "frobnicate = 3".parse::<ExperimentConfig>().unwrap_err();
        assert!(err.reason.contains("unknown key"));
        let err = "trace = lunar".parse::<ExperimentConfig>().unwrap_err();
        assert!(err.reason.contains("unknown trace"));
        let err = "batching = static:0"
            .parse::<ExperimentConfig>()
            .unwrap_err();
        assert!(err.reason.contains(">= 1"));
        let err = "peak_qps = fast".parse::<ExperimentConfig>().unwrap_err();
        assert!(err.reason.contains("not a number"));
        let err = "trace".parse::<ExperimentConfig>().unwrap_err();
        assert!(err.reason.contains("key = value"));
    }

    #[test]
    fn semantic_validation() {
        let err = "peak_qps = 10\nbase_qps = 20"
            .parse::<ExperimentConfig>()
            .unwrap_err();
        assert!(err.reason.contains("peak_qps"));
        let err = "cluster = 0,0,0".parse::<ExperimentConfig>().unwrap_err();
        assert!(err.reason.contains("at least one device"));
        let err = "beta = 0.9".parse::<ExperimentConfig>().unwrap_err();
        assert!(err.reason.contains("beta"));
    }

    #[test]
    fn error_display_includes_line() {
        let err = "\n\ntrace = lunar".parse::<ExperimentConfig>().unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }
}
