//! Builds and runs a serving experiment from an [`ExperimentConfig`].

use proteus_core::batching::{
    AimdBatching, BatchPolicy, NexusBatching, ProteusBatching, StaticBatching,
};
use proteus_core::schedulers::{
    Allocator, ClipperAllocator, ClipperMode, InfaasAccuracyAllocator, ProteusAllocator,
    SommelierAllocator,
};
use proteus_core::system::{ReplanCause, RunOutcome, ServingSystem, SystemConfig, TelemetryConfig};
use proteus_metrics::report::{fmt_f, TextTable};
use proteus_profiler::{Cluster, SloPolicy};
use proteus_sim::SimTime;
use proteus_trace::{NullSink, TraceSink};
use proteus_workloads::{BurstyTrace, DemandTrace, DiurnalTrace, FlatTrace, TraceBuilder};

use crate::config::{AllocationKind, BatchingKind, ExperimentConfig, OutputKind, TraceKind};

/// Everything a finished experiment produced.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// The raw run outcome (metrics, plans, counters).
    pub outcome: RunOutcome,
    /// The rendered report, per the config's `output` selection.
    pub report: String,
}

fn build_allocator(kind: AllocationKind) -> Box<dyn Allocator> {
    match kind {
        AllocationKind::Ilp => Box::new(ProteusAllocator::default()),
        AllocationKind::InfaasV2 => Box::new(InfaasAccuracyAllocator::default()),
        AllocationKind::ClipperHt => Box::new(ClipperAllocator::new(ClipperMode::HighThroughput)),
        AllocationKind::ClipperHa => Box::new(ClipperAllocator::new(ClipperMode::HighAccuracy)),
        AllocationKind::Sommelier => Box::new(SommelierAllocator::default()),
    }
}

fn build_batching(kind: BatchingKind) -> Box<dyn BatchPolicy> {
    match kind {
        BatchingKind::AccScale => Box::new(ProteusBatching),
        BatchingKind::Aimd => Box::new(AimdBatching::default()),
        BatchingKind::Nexus => Box::new(NexusBatching),
        BatchingKind::Static(n) => Box::new(StaticBatching::new(n)),
    }
}

fn build_trace(config: &ExperimentConfig) -> Box<dyn DemandTrace> {
    match config.trace {
        TraceKind::Diurnal => Box::new(DiurnalTrace::paper_like(
            config.trace_secs,
            config.base_qps,
            config.peak_qps,
            config.seed,
        )),
        TraceKind::Bursty => {
            let secs = config.trace_secs;
            Box::new(BurstyTrace {
                low_qps: config.base_qps,
                high_qps: config.peak_qps,
                burst_start: secs / 3,
                burst_end: 2 * secs / 3,
                secs,
            })
        }
        TraceKind::Flat => Box::new(FlatTrace {
            qps: config.peak_qps,
            secs: config.trace_secs,
        }),
    }
}

/// Runs one experiment and renders its report.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentOutput {
    run_experiment_traced(config, &mut NullSink)
}

/// Runs one experiment while recording flight-recorder events into `sink`
/// (pass [`NullSink`] to trace nothing at zero cost).
pub fn run_experiment_traced(
    config: &ExperimentConfig,
    sink: &mut dyn TraceSink,
) -> ExperimentOutput {
    let trace = build_trace(config);
    let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(config.seed)
        .build(trace.as_ref());

    let mut system_config = SystemConfig::paper_testbed();
    system_config.cluster =
        Cluster::with_counts(config.cluster.0, config.cluster.1, config.cluster.2);
    system_config.slo = SloPolicy::with_multiplier(config.slo_multiplier);
    system_config.realloc_period_secs = config.realloc_period_secs;
    system_config.demand_headroom = config.beta;
    system_config.solve_latency = config.solve_latency;
    system_config.seed = config.seed;
    system_config.audit = config.audit;
    system_config.faults = config.faults.clone();
    // Any telemetry output destination switches the plane on.
    let telemetry_on = config.telemetry
        || config.live
        || config.telemetry_out.is_some()
        || config.telemetry_http.is_some();
    if telemetry_on {
        system_config.telemetry = Some(TelemetryConfig {
            window: SimTime::from_secs_f64(config.telemetry_window_secs),
            step: SimTime::from_secs_f64(config.telemetry_step_secs),
            objective: config.telemetry_objective,
            expo_path: config.telemetry_out.as_ref().map(std::path::PathBuf::from),
            live: config.live,
            http_port: config.telemetry_http,
            ..TelemetryConfig::default()
        });
    }

    let mut system = ServingSystem::new(
        system_config,
        build_allocator(config.allocation),
        build_batching(config.batching),
    );
    let outcome = system.run_traced(&arrivals, sink);
    let report = render(config, &outcome);
    ExperimentOutput { outcome, report }
}

/// The end-of-run alert summary appended to human-readable reports when
/// the telemetry plane ran: headline counts plus one line per alert
/// lifetime, e.g. `page  BERT  fired t=305s  resolved t=628s  burn 9.12`.
fn telemetry_block(outcome: &RunOutcome) -> Option<String> {
    let t = outcome.telemetry.as_ref()?;
    let mut out = format!(
        "telemetry: {} window(s), {} alert(s) fired, {} resolved, peak burn {}\n",
        t.windows,
        t.alerts_fired,
        t.alerts_resolved,
        fmt_f(t.peak_burn, 2)
    );
    for a in &t.alerts {
        let resolved = match a.resolved_at {
            Some(at) => format!("resolved t={}s", fmt_f(at.as_secs_f64(), 0)),
            None => "still firing at end of run".into(),
        };
        out.push_str(&format!(
            "  {:<6} {:<13} fired t={}s  {resolved}  burn {}\n",
            a.severity.label(),
            a.scope.map_or("all", |f| f.label()),
            fmt_f(a.fired_at.as_secs_f64(), 0),
            fmt_f(a.burn_at_fire, 2),
        ));
    }
    if t.io_error {
        out.push_str("  (telemetry I/O error: exposition output incomplete)\n");
    }
    Some(out)
}

/// One line summarizing the replan log: counts by trigger cause plus the
/// mean solver wall time per replan, e.g.
/// `initial:1 periodic:12 burst:2 (mean wall 0.84 ms)`.
fn replan_log_line(outcome: &RunOutcome) -> Option<String> {
    if outcome.replan_log.is_empty() {
        return None;
    }
    let mut parts = Vec::new();
    for cause in ReplanCause::ALL {
        let n = outcome
            .replan_log
            .iter()
            .filter(|r| r.cause == cause)
            .count();
        if n > 0 {
            parts.push(format!("{}:{n}", cause.label()));
        }
    }
    let mean_wall_ms = outcome.replan_log.iter().map(|r| r.wall_secs).sum::<f64>()
        / outcome.replan_log.len() as f64
        * 1e3;
    let mut line = format!(
        "{} (mean wall {} ms",
        parts.join(" "),
        fmt_f(mean_wall_ms, 2)
    );
    // Simulated trigger-to-commit delay: only interesting once the solve
    // window is nonzero, so zero-latency reports keep their old shape.
    let mean_solve = outcome.replan_log.iter().map(|r| r.solve_secs).sum::<f64>()
        / outcome.replan_log.len() as f64;
    if mean_solve > 0.0 {
        line.push_str(&format!(", mean commit delay {} s", fmt_f(mean_solve, 2)));
    }
    line.push(')');
    Some(line)
}

/// One deterministic line identifying a run's simulated behaviour.
///
/// Covers the headline counters plus an FNV-1a digest over every
/// replan record's *simulated* fields (trigger/commit instants, cause,
/// plan deltas, demand snapshots). Wall-clock solver timings are
/// deliberately excluded: two runs of the same config must print the
/// same fingerprint on any machine. The CI determinism gate diffs this
/// line across back-to-back runs.
pub fn fingerprint(outcome: &RunOutcome) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in &outcome.replan_log {
        eat(&r.at.as_nanos().to_le_bytes());
        eat(&r.committed_at.as_nanos().to_le_bytes());
        eat(r.cause.label().as_bytes());
        eat(&r.changed.to_le_bytes());
        eat(&r.shrink.to_bits().to_le_bytes());
        for (_, v) in r.observed.iter() {
            eat(&v.to_bits().to_le_bytes());
        }
        for (_, v) in r.target.iter() {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    let s = outcome.metrics.summary();
    format!(
        "fingerprint: served={} dropped={} violation_ratio={} eff_acc={} \
         reallocs={} discarded={} coalesced={} replan_digest={hash:016x}",
        s.total_served,
        s.total_dropped,
        fmt_f(s.slo_violation_ratio, 6),
        fmt_f(s.effective_accuracy_pct(), 4),
        outcome.reallocations,
        outcome.plans_discarded,
        outcome.replans_coalesced,
    )
}

fn render(config: &ExperimentConfig, outcome: &RunOutcome) -> String {
    let mut report = render_body(config, outcome);
    // CSV output stays machine-clean; every other format carries the
    // alert summary.
    if config.output != OutputKind::Timeseries {
        if let Some(block) = telemetry_block(outcome) {
            report.push_str(&block);
        }
    }
    report
}

fn render_body(config: &ExperimentConfig, outcome: &RunOutcome) -> String {
    match config.output {
        OutputKind::Summary => {
            let s = outcome.metrics.summary();
            let mut t = TextTable::new(vec!["metric", "value"]);
            t.row(vec!["arrived".into(), s.total_arrived.to_string()]);
            t.row(vec!["served".into(), s.total_served.to_string()]);
            t.row(vec!["dropped".into(), s.total_dropped.to_string()]);
            t.row(vec![
                "avg throughput (QPS)".into(),
                fmt_f(s.avg_throughput_qps, 1),
            ]);
            t.row(vec![
                "effective accuracy (%)".into(),
                fmt_f(s.effective_accuracy_pct(), 2),
            ]);
            t.row(vec![
                "max accuracy drop (%)".into(),
                fmt_f(s.max_accuracy_drop_pct(), 2),
            ]);
            t.row(vec![
                "SLO violation ratio".into(),
                fmt_f(s.slo_violation_ratio, 4),
            ]);
            for (name, p) in [
                ("latency p50 (ms)", s.latency_p50),
                ("latency p95 (ms)", s.latency_p95),
                ("latency p99 (ms)", s.latency_p99),
            ] {
                if let Some(v) = p {
                    t.row(vec![name.into(), fmt_f(v.as_millis_f64(), 1)]);
                }
            }
            t.row(vec![
                "re-allocations".into(),
                outcome.reallocations.to_string(),
            ]);
            if outcome.plans_discarded > 0 {
                t.row(vec![
                    "plans discarded".into(),
                    outcome.plans_discarded.to_string(),
                ]);
            }
            if outcome.replans_coalesced > 0 {
                t.row(vec![
                    "replans coalesced".into(),
                    outcome.replans_coalesced.to_string(),
                ]);
            }
            if outcome.plan_audits > 0 {
                t.row(vec![
                    "plan audits".into(),
                    format!(
                        "{} ({} violation{})",
                        outcome.plan_audits,
                        outcome.audit_violations,
                        if outcome.audit_violations == 1 {
                            ""
                        } else {
                            "s"
                        }
                    ),
                ]);
            }
            if let Some(line) = replan_log_line(outcome) {
                t.row(vec!["replans by cause".into(), line]);
            }
            // Per-replan solver cost (zero for the heuristic baselines).
            let st = outcome.solver_stats;
            if st.nodes > 0 {
                t.row(vec!["solver nodes".into(), st.nodes.to_string()]);
                t.row(vec!["solver pruned".into(), st.pruned.to_string()]);
                t.row(vec![
                    "solver simplex iterations".into(),
                    st.simplex_iterations.to_string(),
                ]);
                t.row(vec![
                    "solver warm-start hits (%)".into(),
                    fmt_f(st.warm_hit_rate() * 100.0, 1),
                ]);
                t.row(vec![
                    "solver wall (ms)".into(),
                    fmt_f(st.wall_secs() * 1e3, 2),
                ]);
                t.row(vec![
                    "solver wall / replan (ms)".into(),
                    fmt_f(
                        st.wall_secs() * 1e3 / f64::from(outcome.reallocations.max(1)),
                        2,
                    ),
                ]);
            }
            t.render()
        }
        OutputKind::Timeseries => {
            let mut t = TextTable::new(vec![
                "second",
                "arrived",
                "served",
                "violations",
                "effective_acc",
            ]);
            for (i, b) in outcome.metrics.timeseries().iter().enumerate() {
                t.row(vec![
                    i.to_string(),
                    b.arrived.to_string(),
                    b.served().to_string(),
                    b.violations().to_string(),
                    b.effective_accuracy()
                        .map_or("-".into(), |a| fmt_f(a * 100.0, 2)),
                ]);
            }
            t.to_csv()
        }
        OutputKind::Latency => {
            let mut t = TextTable::new(vec![
                "scope", "served", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)",
            ]);
            let row = |t: &mut TextTable, scope: String, h: &proteus_metrics::LatencyHistogram| {
                let pct = |q: f64| {
                    h.percentile(q)
                        .map_or("-".into(), |v| fmt_f(v.as_millis_f64(), 1))
                };
                t.row(vec![
                    scope,
                    h.count().to_string(),
                    pct(0.5),
                    pct(0.9),
                    pct(0.99),
                    fmt_f(h.max().as_millis_f64(), 1),
                ]);
            };
            row(&mut t, "all".into(), outcome.metrics.latency_histogram());
            for f in outcome.metrics.family_summaries() {
                if let Some(h) = outcome.metrics.family_latency(f.family) {
                    row(&mut t, f.family.label().to_string(), h);
                }
            }
            t.render()
        }
        OutputKind::Families => {
            let mut t = TextTable::new(vec![
                "family",
                "arrived",
                "throughput (QPS)",
                "effective acc (%)",
                "violation ratio",
                "p95 (ms)",
                "p99 (ms)",
            ]);
            let pct = |p: Option<proteus_sim::SimTime>| {
                p.map_or("-".into(), |v| fmt_f(v.as_millis_f64(), 1))
            };
            for f in outcome.metrics.family_summaries() {
                t.row(vec![
                    f.family.label().to_string(),
                    f.summary.total_arrived.to_string(),
                    fmt_f(f.summary.avg_throughput_qps, 1),
                    fmt_f(f.summary.effective_accuracy_pct(), 2),
                    fmt_f(f.summary.slo_violation_ratio, 4),
                    pct(f.summary.latency_p95),
                    pct(f.summary.latency_p99),
                ]);
            }
            t.render()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(extra: &str) -> ExperimentConfig {
        format!(
            "trace = flat\ntrace_secs = 8\npeak_qps = 40\nbase_qps = 0\ncluster = 5,2,2\n{extra}"
        )
        .parse()
        .unwrap()
    }

    #[test]
    fn summary_experiment_runs() {
        let out = run_experiment(&quick_config(""));
        let s = out.outcome.metrics.summary();
        assert!(s.total_arrived > 100);
        assert_eq!(s.total_arrived, s.total_served + s.total_dropped);
        assert!(out.report.contains("effective accuracy"));
    }

    #[test]
    fn timeseries_output_is_csv() {
        let out = run_experiment(&quick_config("output = timeseries"));
        let header = out.report.lines().next().unwrap();
        assert_eq!(header, "second,arrived,served,violations,effective_acc");
        assert!(out.report.lines().count() > 5);
    }

    #[test]
    fn families_output_lists_families() {
        let out = run_experiment(&quick_config("output = families"));
        assert!(out.report.contains("EfficientNet"));
    }

    #[test]
    fn latency_output_reports_percentiles() {
        let out = run_experiment(&quick_config("output = latency"));
        assert!(out.report.contains("p99"));
        let all = out.report.lines().nth(2).unwrap();
        assert!(all.starts_with("all"));
    }

    #[test]
    fn summary_includes_percentiles_and_replan_log() {
        let out = run_experiment(&quick_config(""));
        assert!(out.report.contains("latency p50 (ms)"));
        assert!(out.report.contains("latency p99 (ms)"));
        // The ILP default replans at least once (the initial plan).
        assert!(out.report.contains("replans by cause"));
        assert!(out.report.contains("initial:1"));
        assert!(out.report.contains("mean wall"));
        assert!(!out.outcome.replan_log.is_empty());
    }

    #[test]
    fn families_output_has_percentile_columns() {
        let out = run_experiment(&quick_config("output = families"));
        assert!(out.report.contains("p95 (ms)"));
        assert!(out.report.contains("p99 (ms)"));
    }

    #[test]
    fn traced_run_balances_arrivals_and_terminals() {
        let mut sink = proteus_trace::MemorySink::new();
        let out = run_experiment_traced(&quick_config(""), &mut sink);
        let stats = proteus_trace::LifecycleStats::from_events(sink.events());
        let s = out.outcome.metrics.summary();
        assert_eq!(stats.arrived, s.total_arrived);
        assert_eq!(stats.terminals(), stats.arrived);
        assert_eq!(stats.served_on_time + stats.served_late, s.total_served);
        assert_eq!(stats.dropped, s.total_dropped);
    }

    #[test]
    fn telemetry_run_summarizes_and_writes_valid_exposition() {
        let path = std::env::temp_dir().join("proteus_runner_telemetry_test.prom");
        let _ = std::fs::remove_file(&path);
        let mut cfg = quick_config("trace_secs = 30\ntelemetry = on\ntelemetry_window = 5");
        cfg.telemetry_out = Some(path.to_string_lossy().into_owned());
        let out = run_experiment(&cfg);
        let t = out.outcome.telemetry.as_ref().expect("telemetry summary");
        assert!(
            t.windows >= 3,
            "expected several windows, got {}",
            t.windows
        );
        assert!(!t.io_error);
        assert!(out.report.contains("telemetry:"), "{}", out.report);
        let text = std::fs::read_to_string(&path).expect("exposition file");
        let stats = proteus_telemetry::validate(&text).expect("valid exposition");
        assert_eq!(stats.pages as u64, t.windows);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn telemetry_off_leaves_no_summary() {
        let out = run_experiment(&quick_config(""));
        assert!(out.outcome.telemetry.is_none());
        assert!(!out.report.contains("telemetry:"));
    }

    #[test]
    fn every_algorithm_combination_runs() {
        for alloc in ["ilp", "infaas_v2", "clipper_ht", "clipper_ha", "sommelier"] {
            for batch in ["accscale", "aimd", "nexus", "static:2"] {
                let cfg = quick_config(&format!("model_allocation = {alloc}\nbatching = {batch}"));
                let out = run_experiment(&cfg);
                let s = out.outcome.metrics.summary();
                assert_eq!(
                    s.total_arrived,
                    s.total_served + s.total_dropped,
                    "{alloc}/{batch}"
                );
            }
        }
    }
}
