//! `proteus` — run a serving experiment from a configuration file.
//!
//! ```sh
//! proteus experiment.conf          # run the experiment
//! proteus --print-default-config   # starting-point config on stdout
//! proteus experiment.conf --trace run.jsonl                  # flight recorder
//! proteus experiment.conf --trace run.json --trace-format chrome
//! proteus --help
//! ```

use std::process::ExitCode;

use proteus_cli::config::ExperimentConfig;
use proteus_cli::{run_experiment_traced, ExperimentOutput};
use proteus_trace::{export_chrome, JsonlSink, MemorySink, NullSink};

const DEFAULT_CONFIG: &str = "\
# Proteus experiment configuration (artifact-compatible knobs).
trace = diurnal            # diurnal | bursty | flat
trace_secs = 1440
base_qps = 200
peak_qps = 1000
seed = 42
model_allocation = ilp     # ilp | infaas_v2 | clipper_ht | clipper_ha | sommelier
batching = accscale        # accscale | aimd | nexus | static:N
slo_multiplier = 2.0
cluster = 20, 10, 10       # CPU, GTX 1080 Ti, V100 workers
realloc_period = 30
beta = 1.05
solve_latency = zero       # zero | model | fixed:SECS (control-plane solve window)
output = summary           # summary | timeseries | families | latency
# faults = crash@300:31; recover@600:31; loadfail@0.05   # fault injection
telemetry = off            # on: windowed metrics + SLO burn-rate alerts
telemetry_window = 10      # sliding-window span, sim seconds
telemetry_step = 1         # window advance step, sim seconds
telemetry_objective = 0.95 # on-time SLO objective for burn-rate alerts
";

const USAGE: &str = "\
usage: proteus <config-file> [--audit] [--faults <spec>]
               [--solve-latency zero|model|fixed:SECS] [--fingerprint]
               [--trace <path>] [--trace-format jsonl|chrome]
               [--live] [--telemetry-out <path>] [--telemetry-http <port>]
       proteus --print-default-config

Runs a Proteus inference-serving experiment described by a
`key = value` configuration file (see --print-default-config).

  --audit                 re-verify every plan with the independent
                          auditor (Eqs. 1-7) and check DES invariants;
                          exits nonzero on any violation
  --faults <spec>         inject faults: `;`-separated clauses
                          crash@<secs>:<dev>, recover@<secs>:<dev>,
                          slow@<start>-<end>:<dev>x<factor>, loadfail@<p>
                          (overrides the config's `faults` key)
  --solve-latency <spec>  control-plane solve window: zero (legacy
                          instant commit), model (deterministic cost
                          model from solver work), or fixed:SECS
                          (overrides the config's `solve_latency` key)
  --fingerprint           print one deterministic line digesting the
                          run's simulated behaviour (for diffing runs)
  --trace <path>          record flight-recorder events to <path>
  --trace-format <fmt>    jsonl (default; analyse with trace-query) or
                          chrome (open in chrome://tracing or Perfetto)
  --live                  redraw an ANSI dashboard on stderr every
                          telemetry window (implies telemetry = on)
  --telemetry-out <path>  append one Prometheus text-format page per
                          window to <path> (implies telemetry = on;
                          check with promcheck)
  --telemetry-http <port> serve the latest page on 127.0.0.1:<port>
                          (implies telemetry = on; port 0 = ephemeral)";

/// How `--trace-format` renders the recorded events.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

/// Parsed command line: the config path plus optional trace destination.
struct CliArgs {
    config_path: String,
    trace_path: Option<String>,
    trace_format: TraceFormat,
    audit: bool,
    faults: Option<String>,
    solve_latency: Option<proteus_core::SolveLatency>,
    fingerprint: bool,
    live: bool,
    telemetry_out: Option<String>,
    telemetry_http: Option<u16>,
}

/// Splits flags (any position) from the one positional config path.
fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut config_path = None;
    let mut trace_path = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut audit = false;
    let mut faults = None;
    let mut solve_latency = None;
    let mut fingerprint = false;
    let mut live = false;
    let mut telemetry_out = None;
    let mut telemetry_http = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--audit" => audit = true,
            "--faults" => {
                let spec = it.next().ok_or("--faults needs a schedule spec")?;
                faults = Some(spec.clone());
            }
            "--solve-latency" => {
                let spec = it.next().ok_or("--solve-latency needs a value")?;
                solve_latency = Some(spec.parse()?);
            }
            "--fingerprint" => fingerprint = true,
            "--live" => live = true,
            "--telemetry-out" => {
                let path = it.next().ok_or("--telemetry-out needs a file path")?;
                telemetry_out = Some(path.clone());
            }
            "--telemetry-http" => {
                let port = it.next().ok_or("--telemetry-http needs a port")?;
                telemetry_http = Some(
                    port.parse::<u16>()
                        .map_err(|_| format!("bad port `{port}`"))?,
                );
            }
            "--trace" => {
                let path = it.next().ok_or("--trace needs a file path")?;
                trace_path = Some(path.clone());
            }
            "--trace-format" => {
                let fmt = it.next().ok_or("--trace-format needs a value")?;
                trace_format = match fmt.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => return Err(format!("unknown trace format `{other}`")),
                };
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => {
                if config_path.replace(path.to_string()).is_some() {
                    return Err("more than one config file given".into());
                }
            }
        }
    }
    let config_path = config_path.ok_or("no config file given")?;
    Ok(CliArgs {
        config_path,
        trace_path,
        trace_format,
        audit,
        faults,
        solve_latency,
        fingerprint,
        live,
        telemetry_out,
        telemetry_http,
    })
}

/// Runs the experiment, recording a trace when requested.
fn run(config: &ExperimentConfig, args: &CliArgs) -> Result<ExperimentOutput, String> {
    let Some(path) = &args.trace_path else {
        return Ok(run_experiment_traced(config, &mut NullSink));
    };
    match args.trace_format {
        TraceFormat::Jsonl => {
            let mut sink = JsonlSink::create(path)
                .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
            let output = run_experiment_traced(config, &mut sink);
            let events = sink.events_written();
            sink.finish()
                .map_err(|e| format!("error writing trace file `{path}`: {e}"))?;
            eprintln!("trace: {events} events -> {path}");
            Ok(output)
        }
        TraceFormat::Chrome => {
            let mut sink = MemorySink::new();
            let output = run_experiment_traced(config, &mut sink);
            let doc = export_chrome(sink.events());
            std::fs::write(path, doc)
                .map_err(|e| format!("cannot write trace file `{path}`: {e}"))?;
            eprintln!(
                "trace: {} events -> {path} (open in chrome://tracing or ui.perfetto.dev)",
                sink.len()
            );
            Ok(output)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => {
            eprintln!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some("--print-default-config") => {
            print!("{DEFAULT_CONFIG}");
            ExitCode::SUCCESS
        }
        Some(_) => {
            let cli = match parse_args(&args) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let path = &cli.config_path;
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut config: ExperimentConfig = match text.parse() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            config.audit |= cli.audit;
            config.live |= cli.live;
            if let Some(sl) = cli.solve_latency {
                config.solve_latency = sl;
            }
            if cli.telemetry_out.is_some() {
                config.telemetry_out = cli.telemetry_out.clone();
            }
            if cli.telemetry_http.is_some() {
                config.telemetry_http = cli.telemetry_http;
            }
            if let Some(spec) = &cli.faults {
                config.faults = match spec.parse() {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            if !config.faults.is_empty() {
                eprintln!(
                    "faults: {} scripted event(s), load failure p = {}",
                    config.faults.events.len(),
                    config.faults.load_failure_p
                );
            }
            eprintln!(
                "running: {:?} allocation, {:?} batching, {:?} trace ({} s, peak {} QPS)",
                config.allocation,
                config.batching,
                config.trace,
                config.trace_secs,
                config.peak_qps
            );
            match run(&config, &cli) {
                Ok(output) => {
                    print!("{}", output.report);
                    if cli.fingerprint {
                        println!("{}", proteus_cli::fingerprint(&output.outcome));
                    }
                    if config.audit {
                        let o = &output.outcome;
                        eprintln!(
                            "audit: {} plan audit(s), {} violation(s)",
                            o.plan_audits, o.audit_violations
                        );
                        if o.audit_violations > 0 {
                            return ExitCode::FAILURE;
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_args, TraceFormat, DEFAULT_CONFIG};
    use proteus_cli::config::ExperimentConfig;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn default_config_text_parses_to_defaults() {
        let parsed: ExperimentConfig = DEFAULT_CONFIG.parse().unwrap();
        assert_eq!(parsed, ExperimentConfig::default());
    }

    #[test]
    fn parses_trace_flags_in_any_position() {
        let c = parse_args(&argv(&["exp.conf", "--trace", "out.jsonl"])).unwrap();
        assert_eq!(c.config_path, "exp.conf");
        assert_eq!(c.trace_path.as_deref(), Some("out.jsonl"));
        assert!(c.trace_format == TraceFormat::Jsonl);

        let c = parse_args(&argv(&[
            "--trace",
            "out.json",
            "--trace-format",
            "chrome",
            "exp.conf",
        ]))
        .unwrap();
        assert_eq!(c.config_path, "exp.conf");
        assert!(c.trace_format == TraceFormat::Chrome);
    }

    #[test]
    fn parses_audit_flag() {
        let c = parse_args(&argv(&["exp.conf"])).unwrap();
        assert!(!c.audit);
        let c = parse_args(&argv(&["--audit", "exp.conf"])).unwrap();
        assert!(c.audit);
        assert_eq!(c.config_path, "exp.conf");
    }

    #[test]
    fn parses_faults_flag() {
        let c = parse_args(&argv(&["exp.conf", "--faults", "crash@30:2"])).unwrap();
        assert_eq!(c.faults.as_deref(), Some("crash@30:2"));
        let c = parse_args(&argv(&["exp.conf"])).unwrap();
        assert!(c.faults.is_none());
    }

    #[test]
    fn parses_telemetry_flags() {
        let c = parse_args(&argv(&[
            "exp.conf",
            "--live",
            "--telemetry-out",
            "run.prom",
            "--telemetry-http",
            "9090",
        ]))
        .unwrap();
        assert!(c.live);
        assert_eq!(c.telemetry_out.as_deref(), Some("run.prom"));
        assert_eq!(c.telemetry_http, Some(9090));
        let c = parse_args(&argv(&["exp.conf"])).unwrap();
        assert!(!c.live && c.telemetry_out.is_none() && c.telemetry_http.is_none());
    }

    #[test]
    fn parses_solve_latency_and_fingerprint_flags() {
        use proteus_core::SolveLatency;
        let c = parse_args(&argv(&[
            "exp.conf",
            "--solve-latency",
            "model",
            "--fingerprint",
        ]))
        .unwrap();
        assert_eq!(c.solve_latency, Some(SolveLatency::Model));
        assert!(c.fingerprint);
        let c = parse_args(&argv(&["exp.conf", "--solve-latency", "fixed:2.5"])).unwrap();
        assert_eq!(c.solve_latency, Some(SolveLatency::Fixed(2.5)));
        let c = parse_args(&argv(&["exp.conf"])).unwrap();
        assert!(c.solve_latency.is_none() && !c.fingerprint);
        assert!(parse_args(&argv(&["exp.conf", "--solve-latency", "warp"])).is_err());
        assert!(parse_args(&argv(&["exp.conf", "--solve-latency"])).is_err());
    }

    #[test]
    fn rejects_bad_flag_usage() {
        assert!(parse_args(&argv(&["exp.conf", "--trace"])).is_err());
        assert!(parse_args(&argv(&["exp.conf", "--faults"])).is_err());
        assert!(parse_args(&argv(&["exp.conf", "--trace-format", "xml"])).is_err());
        assert!(parse_args(&argv(&["exp.conf", "--frobnicate"])).is_err());
        assert!(parse_args(&argv(&["exp.conf", "--telemetry-out"])).is_err());
        assert!(parse_args(&argv(&["exp.conf", "--telemetry-http", "zero"])).is_err());
        assert!(parse_args(&argv(&["a.conf", "b.conf"])).is_err());
        assert!(parse_args(&argv(&[])).is_err());
    }
}
