//! `proteus` — run a serving experiment from a configuration file.
//!
//! ```sh
//! proteus experiment.conf          # run the experiment
//! proteus --print-default-config   # starting-point config on stdout
//! proteus --help
//! ```

use std::process::ExitCode;

use proteus_cli::config::ExperimentConfig;
use proteus_cli::run_experiment;

const DEFAULT_CONFIG: &str = "\
# Proteus experiment configuration (artifact-compatible knobs).
trace = diurnal            # diurnal | bursty | flat
trace_secs = 1440
base_qps = 200
peak_qps = 1000
seed = 42
model_allocation = ilp     # ilp | infaas_v2 | clipper_ht | clipper_ha | sommelier
batching = accscale        # accscale | aimd | nexus | static:N
slo_multiplier = 2.0
cluster = 20, 10, 10       # CPU, GTX 1080 Ti, V100 workers
realloc_period = 30
beta = 1.05
output = summary           # summary | timeseries | families | latency
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => {
            eprintln!(
                "usage: proteus <config-file>\n       proteus --print-default-config\n\n\
                 Runs a Proteus inference-serving experiment described by a\n\
                 `key = value` configuration file (see --print-default-config)."
            );
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some("--print-default-config") => {
            print!("{DEFAULT_CONFIG}");
            ExitCode::SUCCESS
        }
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let config: ExperimentConfig = match text.parse() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "running: {:?} allocation, {:?} batching, {:?} trace ({} s, peak {} QPS)",
                config.allocation,
                config.batching,
                config.trace,
                config.trace_secs,
                config.peak_qps
            );
            let output = run_experiment(&config);
            print!("{}", output.report);
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::DEFAULT_CONFIG;
    use proteus_cli::config::ExperimentConfig;

    #[test]
    fn default_config_text_parses_to_defaults() {
        let parsed: ExperimentConfig = DEFAULT_CONFIG.parse().unwrap();
        assert_eq!(parsed, ExperimentConfig::default());
    }
}
