//! Cancellation edge cases: stale keys, double-cancel, and cancellation
//! interleaved with same-timestamp FIFO ordering.

use proteus_sim::{EventQueue, SimTime};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

#[test]
fn cancel_after_pop_is_inert() {
    let mut q = EventQueue::new();
    let a = q.push(t(1), "a");
    let b = q.push(t(2), "b");
    assert_eq!(q.pop(), Some((t(1), "a")));
    // The key is stale: cancelling it must fail and must not disturb
    // anything still pending.
    assert!(!q.cancel(a));
    assert_eq!(q.len(), 1);
    assert_eq!(q.peek_time(), Some(t(2)));
    assert_eq!(q.pop(), Some((t(2), "b")));
    assert!(!q.cancel(b));
    assert!(q.is_empty());
}

#[test]
fn double_cancel_counts_once() {
    let mut q = EventQueue::new();
    let a = q.push(t(1), 1);
    q.push(t(2), 2);
    assert!(q.cancel(a), "first cancel succeeds");
    assert!(!q.cancel(a), "second cancel is a no-op");
    assert_eq!(q.len(), 1, "double-cancel must not double-decrement");
    assert_eq!(q.pop(), Some((t(2), 2)));
    assert_eq!(q.pop(), None);
}

#[test]
fn cancel_inside_same_timestamp_run_keeps_fifo_of_rest() {
    let mut q = EventQueue::new();
    let keys: Vec<_> = (0..6).map(|i| q.push(t(5), i)).collect();
    // Cancel the first, a middle one and the last of the equal-time run.
    assert!(q.cancel(keys[0]));
    assert!(q.cancel(keys[3]));
    assert!(q.cancel(keys[5]));
    let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
    assert_eq!(popped, [1, 2, 4], "survivors pop in insertion order");
}

#[test]
fn cancelled_event_never_pops_even_when_reinserted_time_matches() {
    let mut q = EventQueue::new();
    let doomed = q.push(t(3), "doomed");
    q.cancel(doomed);
    // A fresh event at the very same timestamp must pop; the cancelled one
    // must stay dead even though it is FIFO-earlier.
    q.push(t(3), "fresh");
    assert_eq!(q.pop(), Some((t(3), "fresh")));
    assert_eq!(q.pop(), None);
}

#[test]
fn interleaved_cancel_push_pop_stays_consistent() {
    let mut q = EventQueue::new();
    let a = q.push(t(1), "a");
    let b = q.push(t(1), "b");
    assert_eq!(q.pop(), Some((t(1), "a")));
    // Cancel the stale key (no-op) and a live one, then extend the run.
    assert!(!q.cancel(a));
    assert!(q.cancel(b));
    let c = q.push(t(1), "c");
    q.push(t(1), "d");
    assert_eq!(q.peek_time(), Some(t(1)));
    assert_eq!(q.pop(), Some((t(1), "c")));
    assert!(!q.cancel(c), "popped key is stale");
    assert_eq!(q.pop(), Some((t(1), "d")));
    assert!(q.is_empty());
    assert_eq!(q.peek_time(), None);
}

#[test]
fn mass_cancellation_leaves_queue_usable() {
    let mut q = EventQueue::new();
    let keys: Vec<_> = (0..100u32)
        .map(|i| q.push(t(u64::from(i % 7)), i))
        .collect();
    for k in &keys {
        assert!(q.cancel(*k));
    }
    assert!(q.is_empty());
    assert_eq!(q.peek_time(), None);
    assert_eq!(q.pop(), None);
    // The queue is still fully functional afterwards.
    q.push(t(9), 9_u32);
    assert_eq!(q.pop(), Some((t(9), 9)));
}
