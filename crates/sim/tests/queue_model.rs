//! Model-based test of [`EventQueue`]: drives the real queue and a
//! brute-force reference model through 100 randomized schedules and checks
//! every observable (pop order, horizons, peeks, lengths, cancel results)
//! after every step.
//!
//! The queue's order structure has fast paths (back append, front prepend,
//! mid-queue insert) and lazy tombstone collection; this test exists so a
//! rework of those internals cannot silently change observable behaviour.
//! Timestamps are drawn from a small range on purpose: equal-time runs are
//! common, so the FIFO (sequence) tie-break is exercised constantly.

use proteus_sim::{EventKey, EventQueue, SimTime};

/// Deterministic xorshift* generator — the schedules must be reproducible
/// from the seed printed on failure.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let x = &mut self.0;
        *x ^= *x >> 12;
        *x ^= *x << 25;
        *x ^= *x >> 27;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Reference model: a flat list of every event ever pushed, in push order
/// (so the index doubles as the FIFO sequence number), with liveness flags.
#[derive(Default)]
struct Model {
    /// `(time, payload, alive)` per push; index = sequence number.
    events: Vec<(SimTime, u64, bool)>,
}

impl Model {
    fn push(&mut self, at: SimTime, payload: u64) {
        self.events.push((at, payload, true));
    }

    /// Index of the live event that must pop next: earliest time, then
    /// lowest sequence.
    fn min_live(&self) -> Option<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, alive))| alive)
            .min_by_key(|&(i, &(at, _, _))| (at, i))
            .map(|(i, _)| i)
    }

    fn len(&self) -> usize {
        self.events.iter().filter(|&&(_, _, alive)| alive).count()
    }
}

#[test]
fn queue_matches_reference_model_on_random_schedules() {
    for seed in 0..100u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut model = Model::default();
        // Keys live alongside the model's sequence numbers so cancellations
        // hit both structures; popped/cancelled keys stay in the pool to
        // exercise stale-key rejection.
        let mut keys: Vec<(EventKey, usize)> = Vec::new();
        let mut next_payload = 0u64;

        for step in 0..400 {
            let ctx = || format!("seed {seed} step {step}");
            match rng.below(100) {
                // Push dominates so queues grow deep enough for mid-queue
                // inserts; times collide often (0..8) to stress FIFO ties.
                0..=54 => {
                    let at = SimTime::from_millis(rng.below(8));
                    let payload = next_payload;
                    next_payload += 1;
                    let key = queue.push(at, payload);
                    model.push(at, payload);
                    keys.push((key, model.events.len() - 1));
                }
                55..=69 => {
                    // Cancel a random key — possibly already popped or
                    // already cancelled; both must return false and change
                    // nothing.
                    if keys.is_empty() {
                        continue;
                    }
                    let (key, idx) = keys[rng.below(keys.len() as u64) as usize];
                    let was_alive = model.events[idx].2;
                    assert_eq!(queue.cancel(key), was_alive, "{}", ctx());
                    model.events[idx].2 = false;
                }
                70..=84 => {
                    let expect = model.min_live();
                    let got = queue.pop();
                    match expect {
                        None => assert_eq!(got, None, "{}", ctx()),
                        Some(i) => {
                            let (at, payload, _) = model.events[i];
                            assert_eq!(got, Some((at, payload)), "{}", ctx());
                            model.events[i].2 = false;
                        }
                    }
                }
                85..=94 => {
                    let horizon = SimTime::from_millis(rng.below(9));
                    let expect = model.min_live().filter(|&i| model.events[i].0 <= horizon);
                    let got = queue.pop_at_or_before(horizon);
                    match expect {
                        None => assert_eq!(got, None, "{}", ctx()),
                        Some(i) => {
                            let (at, payload, _) = model.events[i];
                            assert_eq!(got, Some((at, payload)), "{}", ctx());
                            model.events[i].2 = false;
                        }
                    }
                }
                _ => {
                    let expect = model.min_live().map(|i| model.events[i].0);
                    assert_eq!(queue.peek_time(), expect, "{}", ctx());
                }
            }
            assert_eq!(queue.len(), model.len(), "seed {seed} step {step}");
            assert_eq!(queue.is_empty(), model.len() == 0);
        }

        // Drain: the remaining pops must replay the model's live events in
        // exactly (time, sequence) order.
        let mut expected: Vec<(SimTime, u64)> = model
            .events
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, alive))| alive)
            .map(|(i, &(at, payload, _))| (at, i, payload))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(at, _, payload)| (at, payload))
            .collect();
        // `events` is already in sequence order, so a stable sort by time
        // yields the expected pop order.
        expected.sort_by_key(|&(at, _)| at);
        let drained: Vec<_> = std::iter::from_fn(|| queue.pop()).collect();
        assert_eq!(drained, expected, "seed {seed} drain");
        assert!(queue.is_empty());
        assert_eq!(queue.peek_time(), None);
    }
}
