//! Property-based tests of the discrete-event engine: delivery order,
//! cancellation soundness and clock monotonicity under random schedules.

use proptest::prelude::*;
use proteus_sim::{Actor, EventQueue, SimTime, Simulation};

#[derive(Default)]
struct Recorder {
    seen: Vec<(SimTime, u32)>,
}

impl Actor for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, event: u32, _sim: &mut Simulation<u32>) {
        self.seen.push((now, event));
    }
}

proptest! {
    /// Events always pop in nondecreasing timestamp order with FIFO ties,
    /// regardless of push order.
    #[test]
    fn queue_orders_any_schedule(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last.0, "time went backwards");
            if t == last.0 && popped > 0 {
                prop_assert!(i > last.1, "FIFO tie-break violated");
            }
            last = (t, i);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(SimTime::from_millis(t), i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, key) in &keys {
            let cancelled = cancel_mask.get(*i).copied().unwrap_or(false);
            if cancelled {
                prop_assert!(q.cancel(*key));
            } else {
                expect.push(*i);
            }
        }
        prop_assert_eq!(q.len(), expect.len());
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            got.push(i);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// The simulation clock never decreases and delivers every event.
    #[test]
    fn simulation_clock_is_monotone(times in prop::collection::vec(0u64..5000, 1..300)) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule(SimTime::from_micros(t), i as u32);
        }
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        prop_assert_eq!(rec.seen.len(), times.len());
        for w in rec.seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        let mut expected: Vec<u64> = times.clone();
        expected.sort_unstable();
        let got: Vec<u64> = rec.seen.iter().map(|(t, _)| t.as_nanos() / 1000).collect();
        prop_assert_eq!(got, expected);
    }

    /// Splitting a run at an arbitrary horizon delivers the same sequence
    /// as running to completion.
    #[test]
    fn run_until_composes(times in prop::collection::vec(0u64..1000, 1..100), split in 0u64..1000) {
        let build = |rec: &mut Recorder, split: Option<u64>| {
            let mut sim = Simulation::new();
            for (i, &t) in times.iter().enumerate() {
                sim.schedule(SimTime::from_millis(t), i as u32);
            }
            match split {
                None => sim.run(rec),
                Some(s) => {
                    sim.run_until(SimTime::from_millis(s), rec);
                    sim.run(rec);
                }
            }
        };
        let mut whole = Recorder::default();
        build(&mut whole, None);
        let mut halves = Recorder::default();
        build(&mut halves, Some(split));
        prop_assert_eq!(whole.seen, halves.seen);
    }
}
