//! Integer-nanosecond simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, stored as whole nanoseconds.
///
/// `SimTime` doubles as an instant and a duration, exactly like the scalar
/// timestamps of classic discrete-event simulators. Arithmetic is saturating
/// on overflow is *not* provided — overflowing a 64-bit nanosecond counter
/// means ~584 years of simulated time, which indicates a bug, so additions
/// panic in debug builds like ordinary integer arithmetic.
///
/// # Examples
///
/// ```
/// use proteus_sim::SimTime;
///
/// let t = SimTime::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(t + SimTime::from_millis(500), SimTime::from_secs(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (~584 simulated years).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime requires a finite non-negative number of seconds, got {secs}"
        );
        let nanos = secs * 1e9;
        assert!(nanos <= u64::MAX as f64, "SimTime overflow: {secs} s");
        SimTime(nanos.round() as u64)
    }

    /// Creates a time from fractional milliseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimTime::from_secs_f64`].
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the difference `self - other`, or [`SimTime::ZERO`] if `other`
    /// is later (no negative spans).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1500));
        assert_eq!(SimTime::from_millis_f64(2.5), SimTime::from_micros(2500));
        assert!((SimTime::from_nanos(1_234_567).as_millis_f64() - 1.234567).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(b * 5, SimTime::from_secs(5));
        assert_eq!(a / 3, SimTime::from_secs(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(4));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = (1..=4).map(SimTime::from_secs).sum();
        assert_eq!(total, SimTime::from_secs(10));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
            SimTime::MAX,
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3),
                SimTime::MAX
            ]
        );
    }
}
