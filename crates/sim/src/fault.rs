//! Deterministic fault-injection schedules ("proteus-chaos").
//!
//! A [`FaultSchedule`] is a sorted script of [`FaultEvent`]s plus a
//! per-load failure probability. The serving engine turns the script into
//! ordinary simulation events at run start, so a fault schedule is exactly
//! as deterministic as the rest of the run: the same seed and schedule
//! always reproduce the same crash, the same salvage decisions and the
//! same replans.
//!
//! Schedules come from three places:
//!
//! * scripted, via the [`FromStr`] grammar (the CLI's `--faults` flag):
//!   `;`-separated clauses `crash@<secs>:<dev>`, `recover@<secs>:<dev>`,
//!   `slow@<start>-<end>:<dev>x<factor>` and `loadfail@<p>`;
//! * generated, via [`FaultSchedule::seeded_random`] (chaos testing);
//! * built programmatically from [`FaultEvent`] values.

use std::fmt;
use std::str::FromStr;

use crate::SimTime;

/// One kind of injected fault, applied to a device by dense index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device dies instantly: its in-flight batch never completes and
    /// its queue must be salvaged by the serving layer.
    DeviceCrash {
        /// Dense device index.
        device: u32,
    },
    /// The device comes back empty (no model loaded) and serviceable.
    DeviceRecover {
        /// Dense device index.
        device: u32,
    },
    /// The device keeps serving but every batch takes `slowdown` times
    /// longer until the matching [`FaultKind::StragglerEnd`].
    StragglerStart {
        /// Dense device index.
        device: u32,
        /// Latency multiplier, `>= 1.0`.
        slowdown: f64,
    },
    /// The device's execution latency returns to normal.
    StragglerEnd {
        /// Dense device index.
        device: u32,
    },
}

impl FaultKind {
    /// The device this fault targets.
    pub fn device(self) -> u32 {
        match self {
            FaultKind::DeviceCrash { device }
            | FaultKind::DeviceRecover { device }
            | FaultKind::StragglerStart { device, .. }
            | FaultKind::StragglerEnd { device } => device,
        }
    }
}

/// A scheduled fault: when it strikes, and what it does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulated time the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete fault script for one run.
///
/// The default schedule is empty: no crashes, no stragglers, loads never
/// fail — byte-identical behaviour to a run without fault injection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    /// Scripted faults, sorted by [`FaultEvent::at`] (ties keep insertion
    /// order, matching the simulator's FIFO tie-break).
    pub events: Vec<FaultEvent>,
    /// Probability in `[0, 1]` that any individual model load fails and
    /// must be retried with backoff. Zero disables load failures.
    pub load_failure_p: f64,
}

impl FaultSchedule {
    /// `true` when the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.load_failure_p <= 0.0
    }

    /// Sorts the script by fire time (stable, so equal-time faults keep
    /// their authoring order).
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }

    /// Semantic validation: device-independent bounds on every clause.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid clause.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.load_failure_p) {
            return Err(format!(
                "load failure probability {} outside [0, 1]",
                self.load_failure_p
            ));
        }
        for e in &self.events {
            if let FaultKind::StragglerStart { slowdown, .. } = e.kind {
                if !slowdown.is_finite() || slowdown < 1.0 {
                    return Err(format!("straggler slowdown {slowdown} must be >= 1.0"));
                }
            }
        }
        Ok(())
    }

    /// Generates a reproducible random schedule for chaos testing: each
    /// device independently draws crash (and usually recovery) times plus
    /// an optional straggler window inside `[0, horizon]`, and runs draw a
    /// moderate load-failure probability. The result is a pure function of
    /// `seed`.
    pub fn seeded_random(seed: u64, horizon: SimTime, num_devices: u32) -> Self {
        let mut mix = SplitMix64::new(seed ^ 0x00c0_ffee_c4a5_0000);
        let span = horizon.as_nanos();
        let at = |frac: f64| SimTime::from_nanos((span as f64 * frac) as u64);
        let mut schedule = FaultSchedule {
            events: Vec::new(),
            load_failure_p: if mix.uniform() < 0.5 {
                0.3 * mix.uniform()
            } else {
                0.0
            },
        };
        for device in 0..num_devices {
            if mix.uniform() < 0.4 {
                let crash = 0.05 + 0.8 * mix.uniform();
                schedule.events.push(FaultEvent {
                    at: at(crash),
                    kind: FaultKind::DeviceCrash { device },
                });
                if mix.uniform() < 0.7 {
                    let recover = crash + (0.95 - crash) * mix.uniform();
                    schedule.events.push(FaultEvent {
                        at: at(recover),
                        kind: FaultKind::DeviceRecover { device },
                    });
                }
            }
            if mix.uniform() < 0.3 {
                let start = 0.8 * mix.uniform();
                let end = start + (0.95 - start) * mix.uniform();
                let slowdown = 1.5 + 3.0 * mix.uniform();
                schedule.events.push(FaultEvent {
                    at: at(start),
                    kind: FaultKind::StragglerStart { device, slowdown },
                });
                schedule.events.push(FaultEvent {
                    at: at(end),
                    kind: FaultKind::StragglerEnd { device },
                });
            }
        }
        schedule.sort();
        schedule
    }
}

/// A failure parsing a `--faults` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError {
    /// Human-readable reason, naming the offending clause.
    pub reason: String,
}

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.reason)
    }
}

impl std::error::Error for ParseFaultError {}

impl FromStr for FaultSchedule {
    type Err = ParseFaultError;

    /// Parses the CLI grammar: `;`-separated clauses.
    ///
    /// * `crash@30:2` — device 2 crashes at t = 30 s;
    /// * `recover@90:2` — device 2 comes back at t = 90 s;
    /// * `slow@10-40:1x2.5` — device 1 runs 2.5× slower from 10 s to 40 s;
    /// * `loadfail@0.2` — every model load fails with probability 0.2.
    fn from_str(text: &str) -> Result<Self, ParseFaultError> {
        let err = |reason: String| ParseFaultError { reason };
        let num = |v: &str| -> Result<f64, ParseFaultError> {
            v.trim()
                .parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| err(format!("`{v}` is not a non-negative number")))
        };
        let dev = |v: &str| -> Result<u32, ParseFaultError> {
            v.trim()
                .parse::<u32>()
                .map_err(|_| err(format!("`{v}` is not a device index")))
        };
        let mut schedule = FaultSchedule::default();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let Some((verb, rest)) = clause.split_once('@') else {
                return Err(err(format!("`{clause}` has no `@`")));
            };
            match verb.trim() {
                "crash" | "recover" => {
                    let Some((secs, device)) = rest.split_once(':') else {
                        return Err(err(format!("`{clause}` needs `<secs>:<device>`")));
                    };
                    let at = SimTime::from_secs_f64(num(secs)?);
                    let device = dev(device)?;
                    schedule.events.push(FaultEvent {
                        at,
                        kind: if verb.trim() == "crash" {
                            FaultKind::DeviceCrash { device }
                        } else {
                            FaultKind::DeviceRecover { device }
                        },
                    });
                }
                "slow" => {
                    let Some((window, target)) = rest.split_once(':') else {
                        return Err(err(format!(
                            "`{clause}` needs `<start>-<end>:<device>x<factor>`"
                        )));
                    };
                    let Some((start, end)) = window.split_once('-') else {
                        return Err(err(format!("`{clause}` needs a `<start>-<end>` window")));
                    };
                    let Some((device, factor)) = target.split_once('x') else {
                        return Err(err(format!(
                            "`{clause}` needs a `<device>x<factor>` target"
                        )));
                    };
                    let (start, end) = (num(start)?, num(end)?);
                    if end <= start {
                        return Err(err(format!("`{clause}` window must end after it starts")));
                    }
                    let device = dev(device)?;
                    schedule.events.push(FaultEvent {
                        at: SimTime::from_secs_f64(start),
                        kind: FaultKind::StragglerStart {
                            device,
                            slowdown: num(factor)?,
                        },
                    });
                    schedule.events.push(FaultEvent {
                        at: SimTime::from_secs_f64(end),
                        kind: FaultKind::StragglerEnd { device },
                    });
                }
                "loadfail" => schedule.load_failure_p = num(rest)?,
                other => return Err(err(format!("unknown fault verb `{other}`"))),
            }
        }
        schedule.sort();
        schedule
            .validate()
            .map_err(|reason| ParseFaultError { reason })?;
        Ok(schedule)
    }
}

/// SplitMix64: a tiny self-contained generator so schedule generation does
/// not perturb (or depend on) the run's main noise stream.
#[derive(Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn default_schedule_is_empty() {
        let s = FaultSchedule::default();
        assert!(s.is_empty());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn parses_full_grammar() {
        let s: FaultSchedule = "crash@30:2; recover@90:2; slow@10-40:1x2.5; loadfail@0.2"
            .parse()
            .unwrap();
        assert_eq!(s.load_failure_p, 0.2);
        assert_eq!(s.events.len(), 4);
        // Sorted by time: slow-start (10), crash (30), slow-end (40),
        // recover (90).
        assert_eq!(
            s.events[0].kind,
            FaultKind::StragglerStart {
                device: 1,
                slowdown: 2.5
            }
        );
        assert_eq!(s.events[0].at, secs(10.0));
        assert_eq!(s.events[1].kind, FaultKind::DeviceCrash { device: 2 });
        assert_eq!(s.events[1].at, secs(30.0));
        assert_eq!(s.events[2].kind, FaultKind::StragglerEnd { device: 1 });
        assert_eq!(s.events[3].kind, FaultKind::DeviceRecover { device: 2 });
    }

    #[test]
    fn empty_spec_parses_to_empty_schedule() {
        let s: FaultSchedule = "".parse().unwrap();
        assert!(s.is_empty());
        let s: FaultSchedule = " ; ; ".parse().unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "crash",
            "crash@30",
            "crash@x:1",
            "crash@30:x",
            "slow@10:1x2",
            "slow@40-10:1x2",
            "slow@10-40:1",
            "slow@10-40:1x0.5",
            "loadfail@1.5",
            "loadfail@x",
            "frob@1:2",
        ] {
            assert!(bad.parse::<FaultSchedule>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn seeded_random_is_deterministic_and_valid() {
        let a = FaultSchedule::seeded_random(7, secs(60.0), 9);
        let b = FaultSchedule::seeded_random(7, secs(60.0), 9);
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
        let c = FaultSchedule::seeded_random(8, secs(60.0), 9);
        assert_ne!(a, c, "different seeds should give different schedules");
        // Sorted and inside the horizon.
        for w in a.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &a.events {
            assert!(e.at <= secs(60.0));
            assert!(e.kind.device() < 9);
        }
    }

    #[test]
    fn seeded_random_eventually_crashes_something() {
        let crashed = (0..50).any(|seed| {
            FaultSchedule::seeded_random(seed, secs(60.0), 9)
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::DeviceCrash { .. }))
        });
        assert!(crashed);
    }
}
