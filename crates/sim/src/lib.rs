//! Deterministic discrete-event simulation engine.
//!
//! This crate is the execution substrate for the Proteus reproduction: the
//! paper evaluates its system both on a physical cluster and on an
//! event-driven simulator (§6.1.5), and shows the two match within a
//! fraction of a percent. Everything in this workspace runs on top of this
//! engine.
//!
//! The engine is intentionally minimal and fully deterministic:
//!
//! * [`SimTime`] is an integer-nanosecond timestamp, so there is no floating
//!   point drift and no platform-dependent ordering.
//! * [`EventQueue`] breaks ties between events scheduled for the same instant
//!   by insertion order, so a given seed always yields the same run.
//! * [`Simulation`] drives a user-supplied [`Actor`] until the queue drains
//!   or a horizon is reached.
//!
//! # Examples
//!
//! ```
//! use proteus_sim::{Actor, SimTime, Simulation};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl Actor for Counter {
//!     type Event = &'static str;
//!
//!     fn handle(&mut self, now: SimTime, event: &'static str, sim: &mut Simulation<Self::Event>) {
//!         self.fired += 1;
//!         if event == "tick" && self.fired < 3 {
//!             sim.schedule(now + SimTime::from_secs_f64(1.0), "tick");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! sim.schedule(SimTime::ZERO, "tick");
//! let mut counter = Counter { fired: 0 };
//! sim.run(&mut counter);
//! assert_eq!(counter.fired, 3);
//! ```

#![forbid(unsafe_code)]

mod event;
mod fault;
mod time;

pub use event::{EventKey, EventQueue};
pub use fault::{FaultEvent, FaultKind, FaultSchedule, ParseFaultError};
pub use time::SimTime;

/// A simulation participant: receives events in timestamp order.
///
/// The actor is handed a mutable reference to the [`Simulation`] so it can
/// schedule (or cancel) further events while handling the current one.
pub trait Actor {
    /// The event payload type routed through the simulation.
    type Event;

    /// Handles one event occurring at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sim: &mut Simulation<Self::Event>);
}

/// The simulation driver: a clock plus a pending-event queue.
///
/// Events are delivered in nondecreasing timestamp order; ties are broken by
/// scheduling order (FIFO). See the [crate-level documentation](crate) for a
/// complete example.
#[derive(Debug)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    delivered: u64,
    /// Events delivered with a timestamp earlier than the clock — always 0
    /// unless the event queue is broken. Counted (not just asserted) so
    /// release-mode audits can verify the invariant at end of run.
    time_regressions: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation whose clock starts at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            delivered: 0,
            time_regressions: 0,
        }
    }

    /// Number of events delivered out of time order (event-time
    /// monotonicity violations). Always 0 for a correct event queue; the
    /// serving system's end-of-run audit asserts this.
    pub fn time_regressions(&self) -> u64 {
        self.time_regressions
    }

    /// Returns the current simulated time.
    ///
    /// While [`run`](Self::run) is delivering an event this is the event's
    /// timestamp; after a run it is the timestamp of the last delivered
    /// event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Returns the number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The highest number of events ever pending at once (the event-queue
    /// high-water mark, reported by the throughput benchmark).
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Returns a key that can be passed to [`cancel`](Self::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock: the simulated past
    /// is immutable.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at:?} in the past (now = {:?})",
            self.now
        );
        self.queue.push(at, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending and is now removed;
    /// `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Returns the timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs until the event queue is empty.
    pub fn run<A>(&mut self, actor: &mut A)
    where
        A: Actor<Event = E> + ?Sized,
    {
        self.run_until(SimTime::MAX, actor);
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon` (events at exactly `horizon` are delivered).
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_until<A>(&mut self, horizon: SimTime, actor: &mut A) -> u64
    where
        A: Actor<Event = E> + ?Sized,
    {
        let before = self.delivered;
        loop {
            let Some((at, event)) = self.queue.pop_at_or_before(horizon) else {
                break;
            };
            if at < self.now {
                self.time_regressions += 1;
                debug_assert!(false, "event queue must be monotone: {at} < {}", self.now);
            }
            self.now = at;
            self.delivered += 1;
            actor.handle(at, event, self);
        }
        self.delivered - before
    }

    /// Delivers exactly one event, if one is pending.
    ///
    /// Returns the delivered event's timestamp, or `None` if the queue was
    /// empty. Useful for lock-step tests.
    pub fn step<A>(&mut self, actor: &mut A) -> Option<SimTime>
    where
        A: Actor<Event = E> + ?Sized,
    {
        let (at, event) = self.queue.pop()?;
        if at < self.now {
            self.time_regressions += 1;
            debug_assert!(false, "event queue must be monotone: {at} < {}", self.now);
        }
        self.now = at;
        self.delivered += 1;
        actor.handle(at, event, self);
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl Actor for Recorder {
        type Event = u32;

        fn handle(&mut self, now: SimTime, event: u32, _sim: &mut Simulation<u32>) {
            self.seen.push((now, event));
        }
    }

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule(secs(3.0), 3);
        sim.schedule(secs(1.0), 1);
        sim.schedule(secs(2.0), 2);
        let mut rec = Recorder { seen: vec![] };
        sim.run(&mut rec);
        assert_eq!(
            rec.seen,
            vec![(secs(1.0), 1), (secs(2.0), 2), (secs(3.0), 3)]
        );
        assert_eq!(sim.delivered(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Simulation::new();
        for i in 0..100 {
            sim.schedule(secs(1.0), i);
        }
        let mut rec = Recorder { seen: vec![] };
        sim.run(&mut rec);
        let order: Vec<u32> = rec.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new();
        sim.schedule(secs(1.0), 1);
        sim.schedule(secs(2.0), 2);
        sim.schedule(secs(3.0), 3);
        let mut rec = Recorder { seen: vec![] };
        let n = sim.run_until(secs(2.0), &mut rec);
        assert_eq!(n, 2);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), secs(2.0));
        // The remaining event is still deliverable afterwards.
        let n = sim.run_until(secs(10.0), &mut rec);
        assert_eq!(n, 1);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulation::new();
        let _k1 = sim.schedule(secs(1.0), 1);
        let k2 = sim.schedule(secs(2.0), 2);
        sim.schedule(secs(3.0), 3);
        assert!(sim.cancel(k2));
        assert!(!sim.cancel(k2), "double cancel must report false");
        let mut rec = Recorder { seen: vec![] };
        sim.run(&mut rec);
        let order: Vec<u32> = rec.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![1, 3]);
    }

    #[test]
    fn actors_can_schedule_during_handling() {
        struct Chain {
            hops: u32,
        }
        impl Actor for Chain {
            type Event = u32;
            fn handle(&mut self, now: SimTime, event: u32, sim: &mut Simulation<u32>) {
                self.hops += 1;
                if event > 0 {
                    sim.schedule(now + secs(0.5), event - 1);
                }
            }
        }
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, 4);
        let mut chain = Chain { hops: 0 };
        sim.run(&mut chain);
        assert_eq!(chain.hops, 5);
        assert_eq!(sim.now(), secs(2.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Actor for Bad {
            type Event = u32;
            fn handle(&mut self, now: SimTime, _event: u32, sim: &mut Simulation<u32>) {
                sim.schedule(now - secs(0.5), 0);
            }
        }
        let mut sim = Simulation::new();
        sim.schedule(secs(1.0), 0);
        sim.run(&mut Bad);
    }

    #[test]
    fn step_delivers_one_event() {
        let mut sim = Simulation::new();
        sim.schedule(secs(1.0), 1);
        sim.schedule(secs(2.0), 2);
        let mut rec = Recorder { seen: vec![] };
        assert_eq!(sim.step(&mut rec), Some(secs(1.0)));
        assert_eq!(rec.seen.len(), 1);
        assert_eq!(sim.step(&mut rec), Some(secs(2.0)));
        assert_eq!(sim.step(&mut rec), None);
    }

    #[test]
    fn default_is_empty() {
        let sim: Simulation<u32> = Simulation::default();
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.now(), SimTime::ZERO);
    }
}
