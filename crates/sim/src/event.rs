//! A cancellable, FIFO-stable priority queue of timed events.

use std::collections::VecDeque;

use crate::SimTime;

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Keys are unique per [`EventQueue`] for the lifetime of the queue: the
/// key packs the payload's slot index with the slot's generation counter,
/// so a key for an event that already popped (or was cancelled) never
/// matches the slot again, even after the slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    fn new(slot: u32, generation: u32) -> Self {
        Self((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & u64::from(u32::MAX)) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Queue record: ordering fields plus the payload's slot index. Kept small
/// and `Copy` so reordering never moves event payloads around.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    /// The strict total order entries are kept sorted by: time, then
    /// scheduling sequence (FIFO for equal timestamps). `seq` is unique per
    /// queue, so no two entries ever compare equal.
    #[inline]
    fn rank(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// One payload slot of the dense slot map.
#[derive(Debug)]
struct Slot<E> {
    /// Bumped every time the slot is released, invalidating old keys.
    generation: u32,
    state: SlotState<E>,
}

#[derive(Debug)]
enum SlotState<E> {
    /// Slot is on the free list; `next_free` is the list link.
    Vacant { next_free: u32 },
    /// A live scheduled event.
    Occupied(E),
    /// Cancelled but still referenced by a heap entry; collected lazily
    /// when the entry reaches the head of the heap.
    Tombstone,
}

/// Free-list terminator.
const NIL: u32 = u32::MAX;

/// A min-priority queue of `(SimTime, event)` pairs with stable FIFO ordering
/// for equal timestamps and O(1) lazy cancellation.
///
/// Payloads live in a dense slot map; the order structure is a `VecDeque` of
/// small `Copy` records (time, seq, slot index) kept sorted ascending, so
/// the earliest event pops from the front in O(1). Discrete-event serving
/// workloads push mostly *later* events (the next arrival in the trace, a
/// batch completion just ahead of now), which land at or near the back —
/// in practice an O(1) append, measurably cheaper than binary-heap sifting
/// at the simulator's typical depth of a few dozen pending events.
/// Cancellation marks the slot as a tombstone — no queue surgery, no
/// auxiliary sets — and [`pop`](Self::pop) skims tombstones when they
/// surface at the front.
///
/// # Examples
///
/// ```
/// use proteus_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// let key = q.push(SimTime::from_secs(1), "sooner");
/// q.cancel(key);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Sorted ascending by [`Entry::rank`]; front is the earliest event.
    order: VecDeque<Entry>,
    slots: Vec<Slot<E>>,
    /// Head of the vacant-slot free list ([`NIL`] when none).
    free_head: u32,
    /// Number of live (non-cancelled) events.
    live: usize,
    /// High-water mark of `live` over the queue's lifetime.
    peak_live: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            order: VecDeque::new(),
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
            peak_live: 0,
            next_seq: 0,
        }
    }

    /// Returns the number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The highest number of live events ever pending at once.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// Inserts `event` with timestamp `at`, returning a cancellation key.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if self.free_head != NIL {
            let slot = self.free_head as usize;
            let SlotState::Vacant { next_free } = self.slots[slot].state else {
                // The free list links only vacant slots; anything else is
                // queue corruption.
                // lint:allow(panic-path) — corruption invariant; a silent
                // fallback here would mask heap-state bugs, not fix them
                unreachable!("free list points at a non-vacant slot");
            };
            self.free_head = next_free;
            self.slots[slot].state = SlotState::Occupied(event);
            slot as u32
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                state: SlotState::Occupied(event),
            });
            slot
        };
        let entry = Entry { at, seq, slot };
        // Fast paths: append when nothing pending sorts after it (arrivals
        // are scheduled in trace order; completions and timers fire ahead of
        // now), prepend when it precedes everything (the next arrival is
        // usually the soonest pending event). Only mid-queue inserts —
        // completions landing between pending timers — pay the search.
        if self.order.back().is_none_or(|b| b.rank() < entry.rank()) {
            self.order.push_back(entry);
        } else if self.order.front().is_some_and(|f| entry.rank() < f.rank()) {
            self.order.push_front(entry);
        } else {
            let pos = self.order.partition_point(|e| e.rank() < entry.rank());
            self.order.insert(pos, entry);
        }
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        EventKey::new(slot, self.slots[slot as usize].generation)
    }

    /// Cancels the event identified by `key` in O(1).
    ///
    /// Returns `true` if the event was pending, `false` if it already popped
    /// or was already cancelled. Cancellation is lazy: the payload slot is
    /// tombstoned and the heap entry is skipped when it reaches the head.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let Some(slot) = self.slots.get_mut(key.slot()) else {
            return false;
        };
        if slot.generation != key.generation() || !matches!(slot.state, SlotState::Occupied(_)) {
            return false;
        }
        slot.state = SlotState::Tombstone;
        self.live -= 1;
        true
    }

    /// Returns the timestamp of the earliest live event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The front may be a tombstone; fall back to scanning forward (the
        // deque is sorted, so the first occupied entry is the earliest).
        // Cancellations are rare (only retracted batch timers), so the
        // common path is the O(1) front check.
        self.order
            .iter()
            .find(|e| self.occupied(e.slot))
            .map(|e| e.at)
    }

    fn occupied(&self, slot: u32) -> bool {
        matches!(self.slots[slot as usize].state, SlotState::Occupied(_))
    }

    /// Releases a slot back to the free list, invalidating outstanding keys.
    fn release(&mut self, slot: u32) -> SlotState<E> {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        let state = std::mem::replace(
            &mut s.state,
            SlotState::Vacant {
                next_free: self.free_head,
            },
        );
        self.free_head = slot;
        state
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_or_before(SimTime::MAX)
    }

    /// Removes and returns the earliest live event, if its timestamp is at
    /// or before `horizon`; otherwise leaves the queue untouched (apart
    /// from collecting tombstones at the head).
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        loop {
            let head = *self.order.front()?;
            if self.occupied(head.slot) && head.at > horizon {
                return None;
            }
            self.order.pop_front();
            match self.release(head.slot) {
                SlotState::Occupied(event) => {
                    self.live -= 1;
                    return Some((head.at, event));
                }
                SlotState::Tombstone => continue,
                SlotState::Vacant { .. } => {
                    // Every queue entry owns its slot until popped; a vacant
                    // slot here is queue corruption.
                    // lint:allow(panic-path) — corruption invariant; a silent
                    // fallback here would mask heap-state bugs, not fix them
                    unreachable!("queue entry references a vacant slot");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), 'c');
        q.push(t(1), 'a');
        q.push(t(3), 'b');
        assert_eq!(q.pop(), Some((t(1), 'a')));
        assert_eq!(q.pop(), Some((t(3), 'b')));
        assert_eq!(q.pop(), Some((t(5), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(1), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t(1), i)));
        }
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((t(2), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), 2)));
    }

    #[test]
    fn peek_time_scans_past_multiple_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        let b = q.push(t(2), 2);
        q.push(t(3), 3);
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(t(3)));
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        assert_eq!(q.pop(), Some((t(1), 1)));
        assert!(!q.cancel(a), "cancelling an already-popped key must fail");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(2), 2);
        assert_eq!(q.pop(), Some((t(2), 2)));
        q.push(t(4), 4);
        q.push(t(1), 1); // earlier than a previous pop is allowed at queue level
        assert_eq!(q.pop(), Some((t(1), 1)));
        assert_eq!(q.pop(), Some((t(4), 4)));
        assert_eq!(q.pop(), Some((t(10), 10)));
    }

    #[test]
    fn reused_slot_does_not_honour_stale_keys() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        assert_eq!(q.pop(), Some((t(1), 1)));
        // The slot is reused for a new event; the old key must stay dead.
        let b = q.push(t(2), 2);
        assert!(!q.cancel(a), "stale key must not cancel the new occupant");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancelled_slots_are_reused_after_collection() {
        let mut q = EventQueue::new();
        // Fill and cancel a batch; popping collects the tombstones and the
        // next pushes reuse the freed slots instead of growing the map.
        let keys: Vec<_> = (0..8).map(|i| q.push(t(1), i)).collect();
        for k in keys {
            assert!(q.cancel(k));
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.slots.len(), 8);
        for i in 0..8 {
            q.push(t(2), i);
        }
        assert_eq!(q.slots.len(), 8, "freed slots must be reused");
        for i in 0..8 {
            assert_eq!(q.pop(), Some((t(2), i)));
        }
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(t(1), 1);
        q.push(t(3), 3);
        assert_eq!(q.pop_at_or_before(t(2)), Some((t(1), 1)));
        assert_eq!(q.pop_at_or_before(t(2)), None);
        assert_eq!(q.len(), 1, "beyond-horizon event stays queued");
        assert_eq!(q.pop_at_or_before(t(3)), Some((t(3), 3)));
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(t(1), 1);
        q.push(t(2), 2);
        q.push(t(3), 3);
        q.pop();
        q.pop();
        q.push(t(4), 4);
        assert_eq!(q.peak_len(), 3);
    }
}
