//! A cancellable, FIFO-stable priority queue of timed events.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::SimTime;

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Keys are unique per [`EventQueue`] for the lifetime of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-priority queue of `(SimTime, event)` pairs with stable FIFO ordering
/// for equal timestamps and O(log n) lazy cancellation.
///
/// # Examples
///
/// ```
/// use proteus_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// let key = q.push(SimTime::from_secs(1), "sooner");
/// q.cancel(key);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Keys still in the heap that have not been cancelled.
    live: BTreeSet<u64>,
    /// Keys still in the heap that were cancelled (skipped lazily on pop).
    cancelled: BTreeSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            live: BTreeSet::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
        }
    }

    /// Returns the number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `event` with timestamp `at`, returning a cancellation key.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.live.insert(seq);
        EventKey(seq)
    }

    /// Cancels the event identified by `key`.
    ///
    /// Returns `true` if the event was pending, `false` if it already popped
    /// or was already cancelled. Cancellation is lazy: the entry is skipped
    /// when it reaches the head of the heap.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.live.remove(&key.0) {
            self.cancelled.insert(key.0);
            true
        } else {
            false
        }
    }

    /// Returns the timestamp of the earliest live event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The head may be cancelled; fall back to scanning. Cancellations are
        // rare (only retracted batch timers), so the common path is O(1).
        let head = self.heap.peek()?;
        if !self.cancelled.contains(&head.seq) {
            return Some(head.at);
        }
        self.heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| e.at)
            .min()
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skim();
        let entry = self.heap.pop()?;
        self.live.remove(&entry.seq);
        Some((entry.at, entry.event))
    }

    /// Drops cancelled entries sitting at the head of the heap.
    fn skim(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), 'c');
        q.push(t(1), 'a');
        q.push(t(3), 'b');
        assert_eq!(q.pop(), Some((t(1), 'a')));
        assert_eq!(q.pop(), Some((t(3), 'b')));
        assert_eq!(q.pop(), Some((t(5), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(1), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t(1), i)));
        }
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((t(2), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), 2)));
    }

    #[test]
    fn peek_time_scans_past_multiple_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        let b = q.push(t(2), 2);
        q.push(t(3), 3);
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(t(3)));
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        assert_eq!(q.pop(), Some((t(1), 1)));
        assert!(!q.cancel(a), "cancelling an already-popped key must fail");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(2), 2);
        assert_eq!(q.pop(), Some((t(2), 2)));
        q.push(t(4), 4);
        q.push(t(1), 1); // earlier than a previous pop is allowed at queue level
        assert_eq!(q.pop(), Some((t(1), 1)));
        assert_eq!(q.pop(), Some((t(4), 4)));
        assert_eq!(q.pop(), Some((t(10), 10)));
    }
}
