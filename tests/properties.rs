//! Property-based tests across crates: the MILP allocator, the solver and
//! the batching policies under randomized inputs.

use proptest::prelude::*;

use proteus::core::allocation::milp::{solve_allocation, Formulation, MilpConfig};
use proteus::core::batching::{
    BatchContext, BatchDecision, BatchPolicy, NexusBatching, ProteusBatching,
};
use proteus::core::schedulers::AllocContext;
use proteus::core::{FamilyMap, Query, QueryId};
use proteus::profiler::{Cluster, DeviceType, ModelFamily, ModelZoo, ProfileStore, SloPolicy};
use proteus::sim::SimTime;
use proteus::solver::{LinearProgram, MilpSolver, Relation};

fn env() -> (Cluster, ModelZoo, ProfileStore) {
    let zoo = ModelZoo::paper_table3();
    let store = ProfileStore::build(&zoo, SloPolicy::default());
    // At least one device per family so the strict (Eq. 6) formulation is
    // structurally feasible at low demand.
    (Cluster::with_counts(6, 3, 3), zoo, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the demand, the MILP plan is structurally valid and its
    /// capacity covers the (possibly shrunk) demand.
    #[test]
    fn milp_plans_are_valid_and_sufficient(
        d_eff in 0.0f64..600.0,
        d_res in 0.0f64..400.0,
        d_bert in 0.0f64..300.0,
        d_mob in 0.0f64..800.0,
    ) {
        let (cluster, zoo, store) = env();
        let ctx = AllocContext { cluster: &cluster, zoo: &zoo, store: &store };
        let mut demand = FamilyMap::default();
        demand[ModelFamily::EfficientNet] = d_eff;
        demand[ModelFamily::ResNet] = d_res;
        demand[ModelFamily::Bert] = d_bert;
        demand[ModelFamily::MobileNet] = d_mob;
        let out = solve_allocation(&ctx, &demand, None, &MilpConfig::default()).unwrap();
        prop_assert_eq!(out.plan.validate(&ctx), None);
        if out.shrink == 1.0 {
            // Strict path: every family's full demand is covered.
            for family in [ModelFamily::EfficientNet, ModelFamily::ResNet,
                           ModelFamily::Bert, ModelFamily::MobileNet] {
                let target = demand[family].max(0.25);
                prop_assert!(
                    out.plan.capacity(family) >= target * 0.99,
                    "{} capacity {} < target {}",
                    family, out.plan.capacity(family), target
                );
            }
        } else {
            // Shrunk/soft path: the shrink factor reports offered/served.
            let offered: f64 = proteus::profiler::ModelFamily::ALL
                .iter()
                .map(|&f| demand[f].max(0.25))
                .sum();
            let planned: f64 = proteus::profiler::ModelFamily::ALL
                .iter()
                .map(|&f| out.plan.capacity(f).min(demand[f].max(0.25)))
                .sum();
            prop_assert!(
                planned * out.shrink >= offered * 0.98,
                "shrink {} inconsistent: offered {offered}, planned {planned}",
                out.shrink
            );
        }
    }

    /// The aggregated and per-device encodings reach the same optimum
    /// (they are exact reformulations of each other).
    #[test]
    fn formulations_agree(
        d_eff in 5.0f64..300.0,
        d_t5 in 0.0f64..40.0,
    ) {
        let (cluster, zoo, store) = env();
        let ctx = AllocContext { cluster: &cluster, zoo: &zoo, store: &store };
        let mut demand = FamilyMap::default();
        demand[ModelFamily::EfficientNet] = d_eff;
        demand[ModelFamily::T5] = d_t5;
        let agg = solve_allocation(&ctx, &demand, None, &MilpConfig::default()).unwrap();
        let per = solve_allocation(&ctx, &demand, None, &MilpConfig {
            formulation: Formulation::PerDevice,
            ..MilpConfig::default()
        }).unwrap();
        prop_assert!(
            (agg.shrink - per.shrink).abs() <= 0.02 * agg.shrink,
            "shrink diverges: {} vs {}", agg.shrink, per.shrink
        );
        let acc_a = agg.plan.planned_accuracy(&ctx);
        let acc_p = per.plan.planned_accuracy(&ctx);
        for family in [ModelFamily::EfficientNet, ModelFamily::T5] {
            prop_assert!(
                (acc_a[family] - acc_p[family]).abs() < 0.03,
                "{}: {} vs {}", family, acc_a[family], acc_p[family]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random knapsack instances: the MILP optimum is feasible and no worse
    /// than a greedy incumbent, and the LP relaxation bounds it.
    #[test]
    fn knapsack_optimum_bounds(
        values in prop::collection::vec(1.0f64..20.0, 4..10),
        weights in prop::collection::vec(1.0f64..15.0, 4..10),
        cap_frac in 0.2f64..0.9,
    ) {
        let n = values.len().min(weights.len());
        let total_weight: f64 = weights[..n].iter().sum();
        let cap = total_weight * cap_frac;
        let mut lp = LinearProgram::maximize();
        let vars: Vec<_> = (0..n)
            .map(|i| lp.add_binary(format!("b{i}"), values[i]))
            .collect();
        lp.add_constraint(
            vars.iter().zip(&weights[..n]).map(|(&v, &w)| (v, w)),
            Relation::Le,
            cap,
        );
        let milp = MilpSolver::default().solve(&lp).unwrap();
        prop_assert!(lp.is_feasible(milp.values(), 1e-6));
        // LP relaxation upper-bounds the integer optimum.
        let lp_relax = proteus::solver::simplex::solve(&lp).unwrap();
        prop_assert!(lp_relax.objective() >= milp.objective() - 1e-6);
        // Greedy-by-density is a valid lower bound.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| (values[b] / weights[b]).total_cmp(&(values[a] / weights[a])));
        let mut used = 0.0;
        let mut greedy = 0.0;
        for i in order {
            if used + weights[i] <= cap {
                used += weights[i];
                greedy += values[i];
            }
        }
        prop_assert!(milp.objective() >= greedy - 1e-6);
    }

    /// Proactive policies never emit a batch that misses the first query's
    /// deadline, for arbitrary queue shapes.
    #[test]
    fn proactive_batches_meet_first_deadline(
        n in 1usize..40,
        gap_ms in 0.0f64..10.0,
        age_frac in 0.0f64..1.2,
    ) {
        let zoo = ModelZoo::paper_table3();
        let store = ProfileStore::build(&zoo, SloPolicy::default());
        let variant = zoo.least_accurate(ModelFamily::EfficientNet).unwrap().id();
        let profile = store.profile(variant, DeviceType::V100).unwrap();
        let slo = SimTime::from_millis_f64(store.slo_ms(ModelFamily::EfficientNet));
        let queue: Vec<Query> = (0..n)
            .map(|i| Query::new(
                QueryId(i as u64),
                ModelFamily::EfficientNet,
                SimTime::from_millis_f64(gap_ms * i as f64),
                slo,
            ))
            .collect();
        let now = SimTime::from_millis_f64(slo.as_millis_f64() * age_frac);
        let ctx = BatchContext { now, queue: &queue, profile };
        for mut policy in [
            Box::new(ProteusBatching) as Box<dyn BatchPolicy>,
            Box::new(NexusBatching),
        ] {
            match policy.decide(&ctx) {
                BatchDecision::Execute(k) => {
                    prop_assert!(k >= 1 && k as usize <= queue.len());
                    let finish = now + SimTime::from_millis_f64(profile.latency(k));
                    prop_assert!(
                        finish <= queue[0].deadline,
                        "{}: batch {k} finishes late", policy.name()
                    );
                }
                BatchDecision::WaitUntil(t) => {
                    prop_assert!(t > now, "{}: wait must be in the future", policy.name());
                    // Waiting must still leave room to serve the first query.
                    prop_assert!(
                        t + SimTime::from_millis_f64(profile.latency(1)) <= queue[0].deadline
                            || t <= queue[0].deadline,
                        "{}: wait horizon {t} too late", policy.name()
                    );
                }
                BatchDecision::DropExpired(d) => {
                    prop_assert!(d >= 1 && d <= queue.len());
                    // Every dropped query is genuinely unservable now.
                    let l1 = SimTime::from_millis_f64(profile.latency(1));
                    for q in &queue[..d] {
                        prop_assert!(q.deadline < now + l1);
                    }
                }
                BatchDecision::Idle => prop_assert!(queue.is_empty()),
            }
        }
    }
}
