//! Property-based tests across crates: the MILP allocator, the solver and
//! the batching policies under randomized inputs.

use proptest::prelude::*;

use proteus::core::allocation::milp::{solve_allocation, Formulation, MilpConfig};
use proteus::core::batching::{
    BatchContext, BatchDecision, BatchPolicy, NexusBatching, ProteusBatching,
};
use proteus::core::schedulers::AllocContext;
use proteus::core::{FamilyMap, Query, QueryId};
use proteus::profiler::{Cluster, DeviceType, ModelFamily, ModelZoo, ProfileStore, SloPolicy};
use proteus::sim::SimTime;
use proteus::solver::{LinearProgram, MilpSolver, Relation};

fn env() -> (Cluster, ModelZoo, ProfileStore) {
    let zoo = ModelZoo::paper_table3();
    let store = ProfileStore::build(&zoo, SloPolicy::default());
    // At least one device per family so the strict (Eq. 6) formulation is
    // structurally feasible at low demand.
    (Cluster::with_counts(6, 3, 3), zoo, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the demand, the MILP plan is structurally valid and its
    /// capacity covers the (possibly shrunk) demand.
    #[test]
    fn milp_plans_are_valid_and_sufficient(
        d_eff in 0.0f64..600.0,
        d_res in 0.0f64..400.0,
        d_bert in 0.0f64..300.0,
        d_mob in 0.0f64..800.0,
    ) {
        let (cluster, zoo, store) = env();
        let ctx = AllocContext { cluster: &cluster, zoo: &zoo, store: &store, down: &[] };
        let mut demand = FamilyMap::default();
        demand[ModelFamily::EfficientNet] = d_eff;
        demand[ModelFamily::ResNet] = d_res;
        demand[ModelFamily::Bert] = d_bert;
        demand[ModelFamily::MobileNet] = d_mob;
        let out = solve_allocation(&ctx, &demand, None, &MilpConfig::default()).unwrap();
        prop_assert_eq!(out.plan.validate(&ctx), None);
        if out.shrink == 1.0 {
            // Strict path: every family's full demand is covered.
            for family in [ModelFamily::EfficientNet, ModelFamily::ResNet,
                           ModelFamily::Bert, ModelFamily::MobileNet] {
                let target = demand[family].max(0.25);
                prop_assert!(
                    out.plan.capacity(family) >= target * 0.99,
                    "{} capacity {} < target {}",
                    family, out.plan.capacity(family), target
                );
            }
        } else {
            // Shrunk/soft path: the shrink factor reports offered/served.
            let offered: f64 = proteus::profiler::ModelFamily::ALL
                .iter()
                .map(|&f| demand[f].max(0.25))
                .sum();
            let planned: f64 = proteus::profiler::ModelFamily::ALL
                .iter()
                .map(|&f| out.plan.capacity(f).min(demand[f].max(0.25)))
                .sum();
            prop_assert!(
                planned * out.shrink >= offered * 0.98,
                "shrink {} inconsistent: offered {offered}, planned {planned}",
                out.shrink
            );
        }
    }

    /// The aggregated and per-device encodings reach the same optimum
    /// (they are exact reformulations of each other).
    #[test]
    fn formulations_agree(
        d_eff in 5.0f64..300.0,
        d_t5 in 0.0f64..40.0,
    ) {
        let (cluster, zoo, store) = env();
        let ctx = AllocContext { cluster: &cluster, zoo: &zoo, store: &store, down: &[] };
        let mut demand = FamilyMap::default();
        demand[ModelFamily::EfficientNet] = d_eff;
        demand[ModelFamily::T5] = d_t5;
        let agg = solve_allocation(&ctx, &demand, None, &MilpConfig::default()).unwrap();
        let per = solve_allocation(&ctx, &demand, None, &MilpConfig {
            formulation: Formulation::PerDevice,
            ..MilpConfig::default()
        }).unwrap();
        prop_assert!(
            (agg.shrink - per.shrink).abs() <= 0.02 * agg.shrink,
            "shrink diverges: {} vs {}", agg.shrink, per.shrink
        );
        // Alternate optima may compose the same objective from different
        // variants per family, so compare the objective itself: accuracy
        // weighted by routed QPS (what served queries actually experience).
        let routed_acc = |plan: &proteus::core::allocation::AllocationPlan| -> f64 {
            proteus::profiler::ModelFamily::ALL
                .iter()
                .flat_map(|&f| plan.routing(f))
                .map(|&(dev, qps)| {
                    let acc = plan
                        .assignment(dev)
                        .and_then(|v| zoo.variant(v))
                        .map_or(0.0, |v| v.accuracy());
                    qps * acc
                })
                .sum()
        };
        let (obj_a, obj_p) = (routed_acc(&agg.plan), routed_acc(&per.plan));
        prop_assert!(
            (obj_a - obj_p).abs() <= 0.01 * obj_a.max(obj_p),
            "served-accuracy optimum diverges: {obj_a} vs {obj_p}"
        );
    }
}

proptest! {
    // The ISSUE acceptance bar: the independent auditor must accept the
    // plans of 100 randomized MILPs and reject each of three mutation
    // classes with the *right* violation kind.
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Genuine solver output always audits clean; tampered plans never do.
    #[test]
    fn auditor_accepts_genuine_plans_and_rejects_mutants(
        d_eff in 10.0f64..150.0,
        d_res in 10.0f64..150.0,
        d_bert in 10.0f64..150.0,
        d_mob in 10.0f64..150.0,
        per_device in any::<bool>(),
    ) {
        use proteus::core::allocation::audit::audit_plan;
        use proteus::profiler::{DeviceType, VariantId};

        let (cluster, zoo, store) = env();
        let ctx = AllocContext { cluster: &cluster, zoo: &zoo, store: &store, down: &[] };
        let mut demand = FamilyMap::default();
        demand[ModelFamily::EfficientNet] = d_eff;
        demand[ModelFamily::ResNet] = d_res;
        demand[ModelFamily::Bert] = d_bert;
        demand[ModelFamily::MobileNet] = d_mob;
        let config = MilpConfig {
            formulation: if per_device {
                Formulation::PerDevice
            } else {
                Formulation::TypeAggregated
            },
            ..MilpConfig::default()
        };
        let out = solve_allocation(&ctx, &demand, None, &config).unwrap();

        // 1. The genuine plan audits clean.
        let report = audit_plan(&ctx, &demand, &out.plan);
        prop_assert!(report.is_clean(), "genuine plan rejected: {report}");

        // The family carrying the most demand is routed in every plan, so
        // it is the one whose tampering is guaranteed to be observable.
        let victim = [ModelFamily::EfficientNet, ModelFamily::ResNet,
                      ModelFamily::Bert, ModelFamily::MobileNet]
            .into_iter()
            .max_by(|&a, &b| demand[a].total_cmp(&demand[b]))
            .unwrap();
        let routed_dev = out.plan.routing(victim).first().map(|&(dev, _)| dev);
        prop_assert!(routed_dev.is_some(), "{victim} has demand but no routing");
        let routed_dev = routed_dev.unwrap();

        // 2. Mutation: flip a routed device to another family's variant.
        let mut mutant = out.plan.clone();
        let foreign = if victim == ModelFamily::MobileNet {
            ModelFamily::EfficientNet
        } else {
            ModelFamily::MobileNet
        };
        mutant.assign(routed_dev, Some(VariantId { family: foreign, index: 0 }));
        let report = audit_plan(&ctx, &demand, &mutant);
        prop_assert!(
            report.violations.iter().any(|v| v.kind() == "assignment-mismatch"),
            "perturbed assignment not caught: {report}"
        );

        // 3. Mutation: place a model that cannot fit the device's memory.
        let mut mutant = out.plan.clone();
        let gtx = cluster
            .iter()
            .find(|s| s.device_type == DeviceType::Gtx1080Ti)
            .unwrap()
            .id;
        mutant.assign(gtx, Some(VariantId { family: ModelFamily::Gpt2, index: 3 }));
        let report = audit_plan(&ctx, &demand, &mutant);
        prop_assert!(
            report.violations.iter().any(|v| v.kind() == "memory-overflow"),
            "memory overflow not caught: {report}"
        );

        // 4. Mutation: silently stop routing the highest-demand family.
        let mut mutant = out.plan.clone();
        mutant.set_routing(victim, Vec::new());
        let report = audit_plan(&ctx, &demand, &mutant);
        prop_assert!(
            report.violations.iter().any(|v| v.kind() == "coverage-shortfall"),
            "dropped coverage not caught: {report}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random knapsack instances: the MILP optimum is feasible and no worse
    /// than a greedy incumbent, and the LP relaxation bounds it.
    #[test]
    fn knapsack_optimum_bounds(
        values in prop::collection::vec(1.0f64..20.0, 4..10),
        weights in prop::collection::vec(1.0f64..15.0, 4..10),
        cap_frac in 0.2f64..0.9,
    ) {
        let n = values.len().min(weights.len());
        let total_weight: f64 = weights[..n].iter().sum();
        let cap = total_weight * cap_frac;
        let mut lp = LinearProgram::maximize();
        let vars: Vec<_> = (0..n)
            .map(|i| lp.add_binary(format!("b{i}"), values[i]))
            .collect();
        lp.add_constraint(
            vars.iter().zip(&weights[..n]).map(|(&v, &w)| (v, w)),
            Relation::Le,
            cap,
        );
        let milp = MilpSolver::default().solve(&lp).unwrap();
        prop_assert!(lp.is_feasible(milp.values(), 1e-6));
        // LP relaxation upper-bounds the integer optimum.
        let lp_relax = proteus::solver::simplex::solve(&lp).unwrap();
        prop_assert!(lp_relax.objective() >= milp.objective() - 1e-6);
        // Greedy-by-density is a valid lower bound.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| (values[b] / weights[b]).total_cmp(&(values[a] / weights[a])));
        let mut used = 0.0;
        let mut greedy = 0.0;
        for i in order {
            if used + weights[i] <= cap {
                used += weights[i];
                greedy += values[i];
            }
        }
        prop_assert!(milp.objective() >= greedy - 1e-6);
    }

    /// Proactive policies never emit a batch that misses the first query's
    /// deadline, for arbitrary queue shapes.
    #[test]
    fn proactive_batches_meet_first_deadline(
        n in 1usize..40,
        gap_ms in 0.0f64..10.0,
        age_frac in 0.0f64..1.2,
    ) {
        let zoo = ModelZoo::paper_table3();
        let store = ProfileStore::build(&zoo, SloPolicy::default());
        let variant = zoo.least_accurate(ModelFamily::EfficientNet).unwrap().id();
        let profile = store.profile(variant, DeviceType::V100).unwrap();
        let slo = SimTime::from_millis_f64(store.slo_ms(ModelFamily::EfficientNet));
        let queue: Vec<Query> = (0..n)
            .map(|i| Query::new(
                QueryId(i as u64),
                ModelFamily::EfficientNet,
                SimTime::from_millis_f64(gap_ms * i as f64),
                slo,
            ))
            .collect();
        let now = SimTime::from_millis_f64(slo.as_millis_f64() * age_frac);
        let ctx = BatchContext { now, queue: &queue, profile, lat_table: &[] };
        for mut policy in [
            Box::new(ProteusBatching) as Box<dyn BatchPolicy>,
            Box::new(NexusBatching),
        ] {
            match policy.decide(&ctx) {
                BatchDecision::Execute(k) => {
                    prop_assert!(k >= 1 && k as usize <= queue.len());
                    let finish = now + SimTime::from_millis_f64(profile.latency(k));
                    prop_assert!(
                        finish <= queue[0].deadline,
                        "{}: batch {k} finishes late", policy.name()
                    );
                }
                BatchDecision::WaitUntil(t) => {
                    prop_assert!(t > now, "{}: wait must be in the future", policy.name());
                    // Waiting must still leave room to serve the first query.
                    prop_assert!(
                        t + SimTime::from_millis_f64(profile.latency(1)) <= queue[0].deadline
                            || t <= queue[0].deadline,
                        "{}: wait horizon {t} too late", policy.name()
                    );
                }
                BatchDecision::DropExpired(d) => {
                    prop_assert!(d >= 1 && d <= queue.len());
                    // Every dropped query is genuinely unservable now.
                    let l1 = SimTime::from_millis_f64(profile.latency(1));
                    for q in &queue[..d] {
                        prop_assert!(q.deadline < now + l1);
                    }
                }
                BatchDecision::Idle => prop_assert!(queue.is_empty()),
            }
        }
    }
}
