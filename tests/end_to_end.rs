//! Cross-crate integration tests: full serving runs through the public
//! facade, comparing schedulers and batching policies end to end.

use proteus::core::batching::{
    AimdBatching, BatchPolicy, NexusBatching, ProteusBatching, StaticBatching,
};
use proteus::core::schedulers::{
    Allocator, ClipperAllocator, ClipperMode, InfaasAccuracyAllocator, ProteusAllocator,
    SommelierAllocator,
};
use proteus::core::system::{mean_demand, RunOutcome, ServingSystem, SystemConfig};
use proteus::core::FamilyMap;
use proteus::metrics::RunSummary;
use proteus::profiler::ModelFamily;
use proteus::workloads::{
    ArrivalKind, ArrivalProcess, BurstyTrace, DiurnalTrace, FlatTrace, QueryArrival, TraceBuilder,
};

fn arrivals_flat(qps: f64, secs: u32, seed: u64) -> Vec<QueryArrival> {
    TraceBuilder::new(TraceBuilder::paper_families())
        .seed(seed)
        .build(&FlatTrace { qps, secs })
}

fn run(
    config: SystemConfig,
    allocator: Box<dyn Allocator>,
    batching: Box<dyn BatchPolicy>,
    arrivals: &[QueryArrival],
) -> RunOutcome {
    let mut system = ServingSystem::new(config, allocator, batching);
    system.run(arrivals)
}

fn summary_of(outcome: &RunOutcome) -> RunSummary {
    outcome.metrics.summary()
}

#[test]
fn every_scheduler_serves_a_moderate_workload() {
    let arrivals = arrivals_flat(60.0, 15, 1);
    let allocators: Vec<Box<dyn Allocator>> = vec![
        Box::new(ProteusAllocator::default()),
        Box::new(ClipperAllocator::new(ClipperMode::HighThroughput)),
        Box::new(ClipperAllocator::new(ClipperMode::HighAccuracy)),
        Box::new(SommelierAllocator::default()),
        Box::new(InfaasAccuracyAllocator::default()),
    ];
    for allocator in allocators {
        let name = allocator.name();
        let outcome = run(
            SystemConfig::small(),
            allocator,
            Box::new(ProteusBatching),
            &arrivals,
        );
        let s = summary_of(&outcome);
        assert_eq!(
            s.total_arrived,
            s.total_served + s.total_dropped,
            "{name}: accounting must conserve queries"
        );
        assert!(
            s.total_served as f64 > 0.5 * s.total_arrived as f64,
            "{name}: must serve most of a moderate load, served {}/{}",
            s.total_served,
            s.total_arrived
        );
    }
}

#[test]
fn clipper_ht_floors_accuracy_clipper_ha_maxes_it() {
    let arrivals = arrivals_flat(40.0, 12, 2);
    let ht = summary_of(&run(
        SystemConfig::small(),
        Box::new(ClipperAllocator::new(ClipperMode::HighThroughput)),
        Box::new(ProteusBatching),
        &arrivals,
    ));
    let ha = summary_of(&run(
        SystemConfig::small(),
        Box::new(ClipperAllocator::new(ClipperMode::HighAccuracy)),
        Box::new(ProteusBatching),
        &arrivals,
    ));
    assert!(
        ht.effective_accuracy < ha.effective_accuracy,
        "HT {} must be below HA {}",
        ht.effective_accuracy,
        ha.effective_accuracy
    );
    // HA never scales accuracy: whatever it serves is served at 1.0.
    assert!(ha.effective_accuracy > 0.999, "{}", ha.effective_accuracy);
    // HT's accuracy sits near the normalized floor (~0.8–0.87).
    assert!(ht.effective_accuracy < 0.9, "{}", ht.effective_accuracy);
}

#[test]
fn proteus_beats_clipper_ha_on_violations_under_pressure() {
    // At pressure beyond HA capacity, accuracy scaling buys throughput.
    let arrivals = arrivals_flat(600.0, 20, 3);
    let proteus = summary_of(&run(
        SystemConfig::small(),
        Box::new(ProteusAllocator::default()),
        Box::new(ProteusBatching),
        &arrivals,
    ));
    let ha = summary_of(&run(
        SystemConfig::small(),
        Box::new(ClipperAllocator::new(ClipperMode::HighAccuracy)),
        Box::new(ProteusBatching),
        &arrivals,
    ));
    assert!(
        proteus.slo_violation_ratio < ha.slo_violation_ratio,
        "proteus {} !< clipper-ha {}",
        proteus.slo_violation_ratio,
        ha.slo_violation_ratio
    );
    assert!(
        proteus.avg_throughput_qps > ha.avg_throughput_qps,
        "proteus {} !> clipper-ha {}",
        proteus.avg_throughput_qps,
        ha.avg_throughput_qps
    );
}

#[test]
fn proteus_batching_beats_aimd_on_gamma_bursts() {
    // Single-family micro-bursty stream with a frozen allocation: the
    // Fig. 6 isolation experiment.
    let stream: Vec<QueryArrival> =
        ArrivalProcess::new(ArrivalKind::Gamma { shape: 0.05 }, 250.0, 17)
            .take_for_secs(40.0)
            .into_iter()
            .map(|at| QueryArrival::new(at, ModelFamily::EfficientNet))
            .collect();
    let mut config = SystemConfig::small();
    config.realloc_period_secs = 1e9;
    let mut provision = FamilyMap::default();
    provision[ModelFamily::EfficientNet] = 260.0;
    config.provision_demand = Some(provision);

    let policies: Vec<Box<dyn BatchPolicy>> = vec![
        Box::new(ProteusBatching),
        Box::new(NexusBatching),
        Box::new(AimdBatching::default()),
    ];
    let mut ratios = Vec::new();
    for p in policies {
        let name = p.name();
        let s = summary_of(&run(
            config.clone(),
            Box::new(ProteusAllocator::default()),
            p,
            &stream,
        ));
        ratios.push((name, s.slo_violation_ratio));
    }
    let get = |n: &str| ratios.iter().find(|(name, _)| *name == n).unwrap().1;
    assert!(
        get("proteus") <= get("aimd"),
        "proteus must not violate more than AIMD on bursty arrivals: {ratios:?}"
    );
    assert!(
        get("proteus") <= get("nexus") + 0.01,
        "proteus must be at least as good as nexus on bursty arrivals: {ratios:?}"
    );
}

#[test]
fn bursty_trace_triggers_burst_reallocations() {
    let trace = BurstyTrace {
        low_qps: 40.0,
        high_qps: 500.0,
        burst_start: 20,
        burst_end: 50,
        secs: 70,
    };
    let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(5)
        .build(&trace);
    let mut config = SystemConfig::small();
    // Long periodic interval so any fast reaction must come from the burst
    // detector.
    config.realloc_period_secs = 1e9;
    config.provision_demand = Some(mean_demand(&arrivals).scaled(0.5));
    let outcome = run(
        config,
        Box::new(ProteusAllocator::default()),
        Box::new(ProteusBatching),
        &arrivals,
    );
    assert!(
        outcome.burst_reallocations >= 1,
        "the monitoring daemon must trigger at least one burst re-allocation"
    );
}

#[test]
fn diurnal_run_on_paper_testbed_is_sane() {
    let trace = DiurnalTrace::paper_like(120, 80.0, 400.0, 21);
    let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
        .seed(21)
        .build(&trace);
    let outcome = run(
        SystemConfig::paper_testbed(),
        Box::new(ProteusAllocator::default()),
        Box::new(ProteusBatching),
        &arrivals,
    );
    let s = summary_of(&outcome);
    assert_eq!(s.total_arrived, s.total_served + s.total_dropped);
    assert!(s.slo_violation_ratio < 0.2, "{}", s.slo_violation_ratio);
    assert!(s.effective_accuracy > 0.85, "{}", s.effective_accuracy);
    // The final plan must be structurally valid.
    let store = proteus::profiler::ProfileStore::build(
        &proteus::profiler::ModelZoo::paper_table3(),
        proteus::profiler::SloPolicy::default(),
    );
    let cluster = proteus::profiler::Cluster::paper_testbed();
    let zoo = proteus::profiler::ModelZoo::paper_table3();
    let ctx = proteus::core::schedulers::AllocContext {
        cluster: &cluster,
        zoo: &zoo,
        store: &store,
        down: &[],
    };
    assert_eq!(outcome.final_plan.validate(&ctx), None);
}

#[test]
fn family_breakdown_covers_active_families() {
    let arrivals = arrivals_flat(100.0, 10, 8);
    let outcome = run(
        SystemConfig::small(),
        Box::new(ProteusAllocator::default()),
        Box::new(ProteusBatching),
        &arrivals,
    );
    let fams = outcome.metrics.family_summaries();
    // All nine families appear in a Zipf-split trace of 1000 queries.
    assert!(fams.len() >= 8, "got {} families", fams.len());
    let total: u64 = fams.iter().map(|f| f.summary.total_arrived).sum();
    assert_eq!(total, outcome.metrics.summary().total_arrived);
}

#[test]
fn identical_seeds_identical_outcomes_across_systems() {
    let arrivals = arrivals_flat(150.0, 10, 13);
    let run_once = || {
        summary_of(&run(
            SystemConfig::small(),
            Box::new(InfaasAccuracyAllocator::default()),
            Box::new(NexusBatching),
            &arrivals,
        ))
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn static_batch_sizes_above_one_also_work() {
    let arrivals = arrivals_flat(200.0, 10, 4);
    for size in [1, 4, 16] {
        let s = summary_of(&run(
            SystemConfig::small(),
            Box::new(ProteusAllocator::default()),
            Box::new(StaticBatching::new(size)),
            &arrivals,
        ));
        assert_eq!(
            s.total_arrived,
            s.total_served + s.total_dropped,
            "batch size {size}"
        );
    }
}
