//! Proteus: a high-throughput inference-serving system with accuracy
//! scaling — a full Rust reproduction of the ASPLOS'24 paper.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the Proteus system: MILP resource management, adaptive
//!   batching, schedulers and every baseline.
//! * [`profiler`] — the Table 3 model zoo, device catalog and profile store.
//! * [`workloads`] — arrival processes and trace generators.
//! * [`solver`] — the from-scratch Simplex/branch-and-bound MILP solver.
//! * [`metrics`] — run metrics and report rendering.
//! * [`trace`] — the flight recorder: structured event tracing, JSONL and
//!   Chrome-trace export, and offline blame analysis.
//! * [`sim`] — the deterministic discrete-event engine underneath it all.
//!
//! # Quick start
//!
//! ```
//! use proteus::core::batching::ProteusBatching;
//! use proteus::core::schedulers::ProteusAllocator;
//! use proteus::core::system::{ServingSystem, SystemConfig};
//! use proteus::workloads::{FlatTrace, TraceBuilder};
//!
//! let arrivals = TraceBuilder::new(TraceBuilder::paper_families())
//!     .build(&FlatTrace { qps: 100.0, secs: 10 });
//! let mut system = ServingSystem::new(
//!     SystemConfig::small(),
//!     Box::new(ProteusAllocator::default()),
//!     Box::new(ProteusBatching),
//! );
//! let outcome = system.run(&arrivals);
//! println!("{:#?}", outcome.metrics.summary());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every figure of the paper.

#![forbid(unsafe_code)]

pub use proteus_core as core;
pub use proteus_metrics as metrics;
pub use proteus_profiler as profiler;
pub use proteus_sim as sim;
pub use proteus_solver as solver;
pub use proteus_trace as trace;
pub use proteus_workloads as workloads;
